"""Tests for the process-wide compiled-plan cache.

Covers the :class:`~repro.stencil.plancache.PlanCache` LRU itself, the
cache keys (fingerprint + geometry + dtype + flags: equal plans hit,
any variation misses), plan compilation served through it for both the
NumPy and native emitters, and the per-runner hit/miss telemetry.
"""

import numpy as np
import pytest

from repro.mpdata import random_state
from repro.runtime import EngineConfig, InMemorySink, MpdataIslandSolver, Telemetry
from repro.stencil import (
    Box,
    clear_plan_cache,
    compile_plan,
    native_available,
    plan_cache_stats,
    program_fingerprint,
    required_regions,
)
from repro.stencil.plancache import PlanCache, plan_geometry_key

SHAPE = (16, 12, 8)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test sees an empty cache and leaves none of its entries."""
    clear_plan_cache(reset_counters=True)
    yield
    clear_plan_cache(reset_counters=True)


def _delta(action):
    before = plan_cache_stats()
    result = action()
    after = plan_cache_stats()
    return result, {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
    }


class TestPlanCacheUnit:
    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(capacity=2)
        cache.get_or_build(("a",), lambda: 1)
        cache.get_or_build(("b",), lambda: 2)
        cache.get_or_build(("a",), lambda: 1)  # refresh a
        cache.get_or_build(("c",), lambda: 3)  # evicts b, not a
        _, hit_a = cache.get_or_build(("a",), lambda: -1)
        _, hit_b = cache.get_or_build(("b",), lambda: -2)
        assert hit_a and not hit_b
        assert cache.stats()["entries"] == 2

    def test_counters_and_clear(self):
        cache = PlanCache()
        cache.get_or_build(("k",), lambda: 1)
        cache.get_or_build(("k",), lambda: 1)
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        cache.clear()
        assert cache.stats()["entries"] == 0
        assert cache.stats()["misses"] == 1  # counters survive a bare clear
        cache.clear(reset_counters=True)
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_builder_result_returned_on_miss(self):
        cache = PlanCache()
        value, hit = cache.get_or_build(("k",), lambda: "built")
        assert value == "built" and not hit


class TestFingerprintAndGeometry:
    def test_identical_rebuilds_share_a_fingerprint(self, chain_program):
        from repro.stencil.serialize import program_from_dict, program_to_dict

        clone = program_from_dict(program_to_dict(chain_program))
        assert program_fingerprint(clone) == program_fingerprint(chain_program)

    def test_different_programs_differ(self, chain_program, mpdata):
        assert program_fingerprint(chain_program) != program_fingerprint(mpdata)

    def test_geometry_key_tracks_target(self, chain_program):
        plan_a = required_regions(chain_program, Box((0, 0, 0), (8, 4, 4)))
        plan_b = required_regions(chain_program, Box((0, 0, 0), (12, 4, 4)))
        assert plan_geometry_key(plan_a) != plan_geometry_key(plan_b)
        assert plan_geometry_key(plan_a) == plan_geometry_key(
            required_regions(chain_program, Box((0, 0, 0), (8, 4, 4)))
        )


class TestCompilePlanCaching:
    def test_recompile_hits(self, chain_program):
        plan = required_regions(chain_program, Box((0, 0, 0), (8, 4, 4)))
        _, first = _delta(lambda: compile_plan(chain_program, plan))
        _, second = _delta(lambda: compile_plan(chain_program, plan))
        assert first == {"hits": 0, "misses": 1}
        assert second == {"hits": 1, "misses": 0}

    def test_cached_plans_share_no_workspace(self, chain_program):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((14, 4, 4))
        from repro.stencil import ArrayRegion

        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        plan = required_regions(chain_program, Box((0, 0, 0), (8, 4, 4)))
        one = compile_plan(chain_program, plan, reuse_buffers=True)
        two = compile_plan(chain_program, plan, reuse_buffers=True)
        one(inputs)
        two(inputs)
        assert one.workspace is not two.workspace
        np.testing.assert_array_equal(
            one(inputs)["y"].data, two(inputs)["y"].data
        )

    @pytest.mark.parametrize(
        "variation",
        [
            dict(dtype=np.float32),
            dict(timed=True),
        ],
        ids=["dtype", "timed"],
    )
    def test_key_sensitivity_misses(self, chain_program, variation):
        plan = required_regions(chain_program, Box((0, 0, 0), (8, 4, 4)))
        compile_plan(chain_program, plan)
        _, varied = _delta(lambda: compile_plan(chain_program, plan, **variation))
        assert varied["misses"] == 1 and varied["hits"] == 0

    def test_different_geometry_misses(self, chain_program):
        compile_plan(
            chain_program,
            required_regions(chain_program, Box((0, 0, 0), (8, 4, 4))),
        )
        _, other = _delta(
            lambda: compile_plan(
                chain_program,
                required_regions(chain_program, Box((0, 0, 0), (10, 4, 4))),
            )
        )
        assert other["misses"] == 1 and other["hits"] == 0

    @pytest.mark.skipif(
        not native_available(), reason="needs cffi and a system C compiler"
    )
    def test_native_and_numpy_keys_are_disjoint(self, chain_program):
        from repro.stencil import compile_plan_native

        plan = required_regions(chain_program, Box((0, 0, 0), (8, 4, 4)))
        compile_plan(chain_program, plan)
        _, native_first = _delta(
            lambda: compile_plan_native(chain_program, plan)
        )
        _, native_second = _delta(
            lambda: compile_plan_native(chain_program, plan)
        )
        assert native_first == {"hits": 0, "misses": 1}
        assert native_second == {"hits": 1, "misses": 0}


class TestRunnerTelemetry:
    def _stats(self, config):
        sink = InMemorySink()
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE, 2, config=config, telemetry=Telemetry((sink,))
        ) as solver:
            solver.run(state, 2)
        return sink.last.stats

    def test_second_runner_reports_hits(self):
        config = EngineConfig(backend="compiled")
        cold = self._stats(config)
        warm = self._stats(config)
        assert cold.plan_cache_hits == 0
        assert cold.plan_cache_misses > 0
        assert warm.plan_cache_hits == cold.plan_cache_misses
        assert warm.plan_cache_misses == 0

    def test_stats_appear_in_event_payload(self):
        payload = self._stats(EngineConfig(backend="compiled")).to_dict()
        assert "plan_cache_hits" in payload
        assert "plan_cache_misses" in payload

"""Tests for the (3+1)D block planner and axis splitting."""

import pytest
from hypothesis import given, strategies as st

from repro.stencil import (
    Box,
    full_box,
    plan_blocks,
    plan_blocks_exact,
    split_axis,
    working_set_bytes,
)


class TestSplitAxis:
    def test_even_split(self):
        assert split_axis(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_goes_to_leading_parts(self):
        assert split_axis(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_origin_offset(self):
        assert split_axis(4, 2, origin=10) == [(10, 12), (12, 14)]

    def test_rejects_more_parts_than_cells(self):
        with pytest.raises(ValueError):
            split_axis(3, 4)

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            split_axis(3, 0)

    @given(
        length=st.integers(1, 200),
        parts=st.integers(1, 20),
        origin=st.integers(-50, 50),
    )
    def test_split_properties(self, length, parts, origin):
        if parts > length:
            with pytest.raises(ValueError):
                split_axis(length, parts, origin)
            return
        ranges = split_axis(length, parts, origin)
        assert len(ranges) == parts
        assert ranges[0][0] == origin
        assert ranges[-1][1] == origin + length
        sizes = [b - a for a, b in ranges]
        assert sum(sizes) == length
        assert max(sizes) - min(sizes) <= 1  # near-equal, as the paper needs
        for (_, prev_hi), (lo, _) in zip(ranges, ranges[1:]):
            assert prev_hi == lo


class TestWorkingSet:
    def test_counts_all_fields_with_halo(self, chain_program):
        # chain: 4 fields (x, a, b, y) x 8 B; halo 2 per side in i only.
        ws = working_set_bytes(chain_program, (4, 4, 4))
        assert ws == 4 * 8 * (4 + 4) * 4 * 4

    def test_monotone_in_block_size(self, mpdata):
        small = working_set_bytes(mpdata, (8, 8, 8))
        large = working_set_bytes(mpdata, (16, 8, 8))
        assert large > small


class TestPlanBlocks:
    def test_blocks_tile_domain(self, mpdata):
        domain = full_box((64, 48, 16))
        plan = plan_blocks(mpdata, domain, cache_bytes=2 * 1024 * 1024)
        plan.validate_partition()
        assert plan.count > 1

    def test_working_set_fits_budget(self, mpdata):
        budget = 4 * 1024 * 1024
        plan = plan_blocks(mpdata, full_box((128, 128, 32)), budget)
        assert plan.working_set <= budget

    def test_whole_domain_single_block_when_cache_is_huge(self, mpdata):
        domain = full_box((32, 32, 8))
        plan = plan_blocks(mpdata, domain, cache_bytes=10**12)
        assert plan.count == 1
        assert plan.blocks[0] == domain

    def test_budget_too_small_rejected(self, mpdata):
        with pytest.raises(ValueError, match="cache budget"):
            plan_blocks(mpdata, full_box((256, 256, 64)), cache_bytes=1024)

    def test_empty_domain_rejected(self, mpdata):
        with pytest.raises(ValueError, match="empty"):
            plan_blocks(mpdata, Box((0, 0, 0), (0, 4, 4)), 10**6)

    def test_keeps_k_whole_by_default(self, mpdata):
        plan = plan_blocks(mpdata, full_box((256, 256, 16)), 8 * 1024 * 1024)
        assert plan.block_shape[2] == 16

    def test_blocks_ordered_i_major(self, mpdata):
        plan = plan_blocks(mpdata, full_box((64, 64, 8)), 2 * 1024 * 1024)
        i_los = [b.lo[0] for b in plan.blocks]
        assert i_los == sorted(i_los)

    def test_sub_domain_blocking(self, mpdata):
        """Blocking an island's slab (non-origin domain) works too."""
        slab = Box((32, 0, 0), (64, 48, 16))
        plan = plan_blocks(mpdata, slab, 2 * 1024 * 1024)
        plan.validate_partition()
        assert all(slab.contains(b) for b in plan.blocks)


class TestPlanBlocksExact:
    def test_exact_shape_tiles_domain(self, mpdata):
        domain = full_box((24, 16, 8))
        plan = plan_blocks_exact(mpdata, domain, (8, 8, 8))
        plan.validate_partition()
        assert plan.count == 3 * 2 * 1
        assert plan.block_shape == (8, 8, 8)

    def test_block_larger_than_domain_is_clamped(self, mpdata):
        """Oversized extents collapse to one block per axis, and the
        recorded shape / working set describe the clamped block — not a
        block that never exists."""
        domain = full_box((12, 10, 8))
        plan = plan_blocks_exact(mpdata, domain, (64, 64, 64))
        plan.validate_partition()
        assert plan.count == 1
        assert plan.blocks[0] == domain
        assert plan.block_shape == (12, 10, 8)
        assert plan.working_set == working_set_bytes(mpdata, (12, 10, 8))

    def test_partial_clamp_per_axis(self, mpdata):
        domain = full_box((12, 10, 8))
        plan = plan_blocks_exact(mpdata, domain, (4, 64, 8))
        plan.validate_partition()
        assert plan.block_shape == (4, 10, 8)
        assert plan.count == 3

    def test_axis_extent_one(self, mpdata):
        """Degenerate pencil domains (an axis of extent 1) still tile."""
        domain = full_box((16, 1, 8))
        plan = plan_blocks_exact(mpdata, domain, (4, 4, 4))
        plan.validate_partition()
        assert plan.block_shape == (4, 1, 4)
        assert plan.count == 4 * 1 * 2

    def test_unit_blocks(self, mpdata):
        """Block extent 1 on every axis: one block per grid point."""
        domain = full_box((3, 2, 2))
        plan = plan_blocks_exact(mpdata, domain, (1, 1, 1))
        plan.validate_partition()
        assert plan.count == domain.size

    def test_ragged_edges(self, mpdata):
        """Non-dividing shapes leave smaller edge blocks, never gaps."""
        domain = full_box((10, 7, 5))
        plan = plan_blocks_exact(mpdata, domain, (4, 4, 4))
        plan.validate_partition()
        widths = sorted({b.shape[0] for b in plan.blocks})
        assert widths == [2, 4]

    def test_nonpositive_extent_rejected(self, mpdata):
        with pytest.raises(ValueError, match="positive"):
            plan_blocks_exact(mpdata, full_box((8, 8, 8)), (0, 4, 4))

    def test_empty_domain_rejected(self, mpdata):
        with pytest.raises(ValueError, match="empty"):
            plan_blocks_exact(mpdata, Box((0, 0, 0), (4, 0, 4)), (4, 4, 4))

    def test_halo_deeper_than_block(self, mpdata):
        """Blocks shallower than MPDATA's transitive halo (depth 3) are
        legal — each block just re-reads a halo wider than itself."""
        domain = full_box((8, 8, 8))
        plan = plan_blocks_exact(mpdata, domain, (2, 2, 2))
        plan.validate_partition()
        assert plan.count == 64

"""Tests for the tiled (3+1)D execution backend.

The load-bearing property is bit-identity: a tiled sweep must produce
exactly the bytes the flat compiled engine produces, for any block shape
— including degenerate ones (blocks larger than the domain, unit axes,
halos deeper than the block).  On top of that: sized workspaces, static
chunking, steady-state allocation counters, and timing collection.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpdata import MpdataSolver, mpdata_program, random_state
from repro.stencil import (
    ArrayRegion,
    Box,
    compile_plan,
    compile_plan_tiled,
    heat3d,
    plan_blocks_exact,
    required_regions,
    smoother_chain,
)
from repro.stencil.tiled_exec import _chunk


def _random_inputs(program, plan, seed=0):
    """Arrays covering exactly the plan's required input regions."""
    rng = np.random.default_rng(seed)
    inputs = {}
    for field in program.input_fields:
        box = plan.input_boxes[field.name]
        if box.is_empty():
            continue
        inputs[field.name] = ArrayRegion(rng.standard_normal(box.shape), box)
    return inputs


def _flat_result(program, plan, inputs):
    compiled = compile_plan(program, plan)
    results = compiled(inputs)
    output = program.output_fields[0].name
    return results[output].view(plan.target)


def _tiled_result(program, plan, inputs, block_shape, **kwargs):
    block_plan = plan_blocks_exact(program, plan.target, block_shape)
    out = np.empty(plan.target.shape)
    with compile_plan_tiled(program, plan, block_plan, **kwargs) as tiled:
        tiled.execute(inputs, out, origin=plan.target.lo)
    return out


class TestBitIdentity:
    @pytest.mark.parametrize(
        "block_shape",
        [
            (4, 4, 4),
            (5, 3, 2),
            (12, 10, 8),  # one block: the whole target
            (32, 32, 32),  # larger than the domain: clamped
            (12, 1, 8),  # unit axis
            (2, 2, 2),  # shallower than the transitive halo
        ],
    )
    def test_heat3d_blocks_equal_flat(self, block_shape):
        program = heat3d()
        target = Box((0, 0, 0), (12, 10, 8))
        plan = required_regions(program, target)
        inputs = _random_inputs(program, plan, seed=3)
        flat = _flat_result(program, plan, inputs)
        tiled = _tiled_result(program, plan, inputs, block_shape)
        np.testing.assert_array_equal(flat, tiled)

    def test_deep_chain_tiny_blocks(self):
        """smoother_chain's transitive halo dwarfs a 2^3 block; every
        block then reads mostly halo — correctness must not care."""
        program = smoother_chain(depth=4)
        target = Box((0, 0, 0), (8, 6, 6))
        plan = required_regions(program, target)
        inputs = _random_inputs(program, plan, seed=4)
        flat = _flat_result(program, plan, inputs)
        tiled = _tiled_result(program, plan, inputs, (2, 2, 2))
        np.testing.assert_array_equal(flat, tiled)

    def test_intra_threads_equal_serial(self):
        program = heat3d()
        target = Box((0, 0, 0), (12, 10, 8))
        plan = required_regions(program, target)
        inputs = _random_inputs(program, plan, seed=5)
        serial = _tiled_result(program, plan, inputs, (4, 4, 4))
        for workers in (2, 3, 8):
            team = _tiled_result(
                program, plan, inputs, (4, 4, 4), intra_threads=workers
            )
            np.testing.assert_array_equal(serial, team)

    def test_offset_target(self):
        """Targets not anchored at the origin (island slabs) tile and
        execute in global coordinates."""
        program = heat3d()
        target = Box((5, 2, 1), (15, 10, 7))
        plan = required_regions(program, target)
        inputs = _random_inputs(program, plan, seed=6)
        flat = _flat_result(program, plan, inputs)
        block_plan = plan_blocks_exact(program, target, (4, 4, 4))
        out = np.empty(target.shape)
        with compile_plan_tiled(program, plan, block_plan) as tiled:
            tiled.execute(inputs, out, origin=target.lo)
        np.testing.assert_array_equal(flat, out)

    @settings(max_examples=15, deadline=None)
    @given(
        bi=st.integers(1, 14),
        bj=st.integers(1, 12),
        bk=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    def test_property_any_block_shape(self, bi, bj, bk, seed):
        program = heat3d()
        target = Box((0, 0, 0), (10, 8, 6))
        plan = required_regions(program, target)
        inputs = _random_inputs(program, plan, seed=seed)
        flat = _flat_result(program, plan, inputs)
        tiled = _tiled_result(program, plan, inputs, (bi, bj, bk))
        np.testing.assert_array_equal(flat, tiled)

    def test_mpdata_clipped_plan(self, mpdata):
        """The real 17-stage program with ghost-clipped halo plans — the
        exact configuration the island runner uses."""
        shape = (14, 10, 8)
        solver = MpdataSolver(shape)
        state = random_state(shape, seed=11)
        inputs = solver.prepare_inputs(state)
        plan = required_regions(
            mpdata, solver.domain, domain=solver.extended_domain
        )
        flat = _flat_result(mpdata, plan, inputs)
        block_plan = plan_blocks_exact(mpdata, solver.domain, (5, 4, 8))
        out = np.empty(shape)
        with compile_plan_tiled(
            mpdata, plan, block_plan, clip_domain=solver.extended_domain
        ) as tiled:
            tiled.execute(inputs, out)
        np.testing.assert_array_equal(flat, out)


class TestWorkspaces:
    def _tiled(self, **kwargs):
        program = heat3d()
        target = Box((0, 0, 0), (12, 10, 8))
        plan = required_regions(program, target)
        block_plan = plan_blocks_exact(program, target, (4, 4, 4))
        return (
            program,
            plan,
            compile_plan_tiled(program, plan, block_plan, **kwargs),
        )

    def test_zero_allocations_in_steady_state(self):
        program, plan, tiled = self._tiled()
        inputs = _random_inputs(program, plan, seed=7)
        out = np.empty(plan.target.shape)
        with tiled:
            tiled.execute(inputs, out)  # warm-up fills every workspace
            alloc0, reuse0 = tiled.counters()
            assert alloc0 > 0
            for _ in range(3):
                tiled.execute(inputs, out)
            alloc1, reuse1 = tiled.counters()
        assert alloc1 == alloc0
        assert reuse1 > reuse0

    def test_workspaces_are_sized_to_the_block(self):
        """Every block workspace carries a cap equal to its own largest
        stage box — a block can never silently grow past itself."""
        program, plan, tiled = self._tiled()
        with tiled:
            for task in tiled.tasks:
                workspace = task.compiled.workspace
                largest = max(
                    box.size
                    for box in task.plan.stage_boxes
                    if not box.is_empty()
                )
                assert workspace.max_elems == largest

    def test_workspace_bytes_reported(self):
        program, plan, tiled = self._tiled()
        inputs = _random_inputs(program, plan, seed=8)
        out = np.empty(plan.target.shape)
        with tiled:
            assert tiled.workspace_bytes() == 0  # nothing cached yet
            tiled.execute(inputs, out)
            assert tiled.workspace_bytes() > 0

    def test_refresh_workspaces_resets_then_reuses(self):
        program, plan, tiled = self._tiled()
        inputs = _random_inputs(program, plan, seed=9)
        out = np.empty(plan.target.shape)
        with tiled:
            tiled.execute(inputs, out)
            tiled.refresh_workspaces()
            assert tiled.workspace_bytes() == 0
            alloc0, _ = tiled.counters()
            tiled.execute(inputs, out)  # re-warms (counters are cumulative)
            alloc1, _ = tiled.counters()
            assert alloc1 > alloc0

    def test_throwaway_mode_still_bit_identical(self):
        program = heat3d()
        target = Box((0, 0, 0), (12, 10, 8))
        plan = required_regions(program, target)
        inputs = _random_inputs(program, plan, seed=10)
        flat = _flat_result(program, plan, inputs)
        tiled = _tiled_result(
            program, plan, inputs, (4, 4, 4), reuse_buffers=False
        )
        np.testing.assert_array_equal(flat, tiled)


class TestChunking:
    def test_even_and_remainder(self):
        tasks = list(range(10))
        chunks = _chunk(tasks, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for c in chunks for x in c] == tasks  # order preserved

    def test_more_workers_than_tasks(self):
        chunks = _chunk(list(range(3)), 8)
        assert [len(c) for c in chunks] == [1, 1, 1]

    def test_single_worker(self):
        assert _chunk(list(range(5)), 1) == [[0, 1, 2, 3, 4]]


class TestValidationAndTiming:
    def test_mismatched_block_plan_rejected(self):
        program = heat3d()
        target = Box((0, 0, 0), (12, 10, 8))
        plan = required_regions(program, target)
        other = plan_blocks_exact(program, Box((0, 0, 0), (8, 8, 8)), (4, 4, 4))
        with pytest.raises(ValueError, match="must match"):
            compile_plan_tiled(program, plan, other)

    def test_multi_output_rejected(self):
        from repro.stencil import Access, Field, FieldRole, Stage, StencilProgram

        program = StencilProgram.build(
            "two_out",
            inputs=(Field("x", FieldRole.INPUT),),
            stages=(
                Stage("s1", "y", Access("x") + 1.0),
                Stage("s2", "z", Access("x") * 2.0),
            ),
            outputs=("y", "z"),
        )
        target = Box((0, 0, 0), (4, 4, 4))
        plan = required_regions(program, target)
        block_plan = plan_blocks_exact(program, target, (4, 4, 4))
        with pytest.raises(ValueError, match="single-output"):
            compile_plan_tiled(program, plan, block_plan)

    def test_closed_plan_refuses_team_sweeps(self):
        program = heat3d()
        target = Box((0, 0, 0), (8, 8, 8))
        plan = required_regions(program, target)
        block_plan = plan_blocks_exact(program, target, (4, 4, 4))
        tiled = compile_plan_tiled(program, plan, block_plan, intra_threads=2)
        inputs = _random_inputs(program, plan, seed=12)
        out = np.empty(target.shape)
        tiled.execute(inputs, out)
        tiled.close()
        with pytest.raises(RuntimeError, match="closed"):
            tiled.execute(inputs, out)

    def test_timed_sweep_records_block_and_stage_seconds(self):
        program = heat3d()
        target = Box((0, 0, 0), (12, 10, 8))
        plan = required_regions(program, target)
        block_plan = plan_blocks_exact(program, target, (6, 5, 4))
        inputs = _random_inputs(program, plan, seed=13)
        out = np.empty(target.shape)
        with compile_plan_tiled(program, plan, block_plan, timed=True) as tiled:
            tiled.execute(inputs, out)
            assert len(tiled.last_block_seconds) == tiled.block_count
            assert all(t >= 0.0 for t in tiled.last_block_seconds)
            assert tiled.last_sweep_seconds >= max(tiled.last_block_seconds)
            stage_names = {stage.name for stage in program.stages}
            assert set(tiled.stage_seconds) == stage_names

    def test_untimed_sweep_records_nothing(self):
        program = heat3d()
        target = Box((0, 0, 0), (8, 8, 8))
        plan = required_regions(program, target)
        block_plan = plan_blocks_exact(program, target, (4, 4, 4))
        inputs = _random_inputs(program, plan, seed=14)
        out = np.empty(target.shape)
        with compile_plan_tiled(program, plan, block_plan) as tiled:
            tiled.execute(inputs, out)
            assert tiled.last_block_seconds is None
            assert tiled.stage_seconds is None

"""Tests for the stencil gallery and JSON serialization."""

import numpy as np
import pytest

from repro.core import Variant, partition_domain, redundancy_report
from repro.runtime import PartitionedRunner
from repro.stencil import (
    GALLERY,
    biharmonic,
    dump_program,
    expr_from_dict,
    expr_to_dict,
    fabs,
    fmin,
    heat3d,
    jacobi7,
    load_program,
    pos,
    program_from_dict,
    program_halo_depth,
    program_to_dict,
    smoother_chain,
    star3d,
    wave3d,
    Access,
    Where,
    full_box,
)


class TestGalleryStructure:
    def test_all_build_and_lint_clean(self):
        from repro.stencil import lint_program

        for builder in GALLERY.values():
            assert lint_program(builder()) == []

    def test_jacobi_halo(self):
        lo, hi = program_halo_depth(jacobi7())
        assert lo == (0, 0, 0) and hi == (0, 0, 0)  # single stage: no
        # intermediate halo; the input halo is 1 (checked via GhostSpec).
        from repro.mpdata.solver import GhostSpec

        spec = GhostSpec.for_program(jacobi7(), (8, 8, 8))
        assert spec.lo == (1, 1, 1) and spec.hi == (1, 1, 1)

    def test_star_radius_sets_input_halo(self):
        from repro.mpdata.solver import GhostSpec

        spec = GhostSpec.for_program(star3d(radius=4), (16, 16, 16))
        assert spec.lo == (4, 4, 4) and spec.hi == (4, 4, 4)

    def test_star_radius_validation(self):
        with pytest.raises(ValueError):
            star3d(radius=0)

    def test_smoother_chain_halo_grows_with_depth(self):
        lo3, _ = program_halo_depth(smoother_chain(3))
        lo6, _ = program_halo_depth(smoother_chain(6))
        assert lo3 == (2, 2, 2)
        assert lo6 == (5, 5, 5)

    def test_chain_depth_validation(self):
        with pytest.raises(ValueError):
            smoother_chain(0)

    def test_wave_has_two_inputs(self):
        program = wave3d()
        assert {f.name for f in program.input_fields} == {"u", "u_prev"}


class TestGalleryNumerics:
    def test_jacobi_preserves_constants(self):
        shape = (10, 8, 6)
        runner = PartitionedRunner(jacobi7(), shape)
        out = runner.step({"u": np.full(shape, 3.0)})
        np.testing.assert_allclose(out, 3.0, atol=1e-13)

    def test_heat_conserves_mass_periodic(self):
        shape = (10, 8, 6)
        rng = np.random.default_rng(0)
        u = rng.random(shape)
        runner = PartitionedRunner(heat3d(), shape)
        out = runner.step({"u": u})
        assert out.sum() == pytest.approx(u.sum(), rel=1e-12)

    def test_heat_smooths(self):
        shape = (10, 8, 6)
        rng = np.random.default_rng(1)
        u = rng.random(shape)
        runner = PartitionedRunner(heat3d(alpha=1.0 / 6.0), shape)
        out = runner.step({"u": u})
        assert out.var() < u.var()

    def test_wave_constant_state_is_stationary(self):
        shape = (10, 8, 6)
        runner = PartitionedRunner(wave3d(), shape)
        constant = np.full(shape, 2.0)
        out = runner.step({"u": constant, "u_prev": constant})
        np.testing.assert_allclose(out, 2.0, atol=1e-13)

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_islands_bit_exact_for_every_application(self, name):
        program = GALLERY[name]()
        shape = (16, 12, 8)
        rng = np.random.default_rng(42)
        arrays = {
            field.name: rng.random(shape)
            for field in program.input_fields
        }
        whole = PartitionedRunner(program, shape, islands=1)
        split = PartitionedRunner(program, shape, islands=3)
        np.testing.assert_array_equal(whole.step(arrays), split.step(arrays))


class TestRedundancyAcrossGallery:
    def test_deeper_chains_cost_more(self):
        """Redundancy per cut grows with pipeline depth — the structural
        driver behind MPDATA's Table 2 numbers."""
        domain = full_box((64, 16, 8))
        extras = []
        for depth in (2, 4, 6):
            report = redundancy_report(
                smoother_chain(depth),
                partition_domain(domain, 2, Variant.A),
            )
            extras.append(report.extra_percent)
        assert extras[0] < extras[1] < extras[2]

    def test_single_stage_has_zero_redundancy(self):
        domain = full_box((64, 16, 8))
        report = redundancy_report(
            jacobi7(), partition_domain(domain, 4, Variant.A)
        )
        assert report.extra_points == 0  # nothing intermediate to recompute


class TestSerialization:
    def test_mpdata_roundtrip_identity(self, mpdata):
        assert load_program(dump_program(mpdata)) == mpdata

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_gallery_roundtrip(self, name):
        program = GALLERY[name]()
        assert program_from_dict(program_to_dict(program)) == program

    def test_expr_roundtrip_covers_all_nodes(self):
        expr = Where(
            Access("a") - 0.5,
            fmin(pos(Access("b", (1, 0, 0))), 2.0),
            fabs(Access("a")) / 3.0,
        )
        assert expr_from_dict(expr_to_dict(expr)) == expr

    def test_malformed_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown expression kind"):
            expr_from_dict({"kind": "teleport"})

    def test_tampered_program_fails_validation(self, mpdata):
        from repro.stencil import ProgramError

        data = program_to_dict(mpdata)
        # Make a stage read a field that is produced later.
        data["stages"][0]["expr"] = {
            "kind": "access", "field": "x_out", "offset": [0, 0, 0],
        }
        with pytest.raises(ProgramError):
            program_from_dict(data)

    def test_itemsize_and_flags_preserved(self, mpdata):
        data = program_to_dict(mpdata)
        restored = program_from_dict(data)
        by_name = {f.name: f for f in restored.fields}
        assert by_name["h"].time_varying is False
        assert by_name["x"].itemsize == 8

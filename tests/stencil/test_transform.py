"""Tests for semantics-preserving program transformations."""

import numpy as np
import pytest

from repro.stencil import (
    Access,
    ArrayRegion,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    eliminate_dead_stages,
    execute,
    inline_all_temporaries,
    inline_stage,
    schedule_by_levels,
    shift_expr,
    substitute_field,
)


def _run(program, x, target, lo=(-4, 0, 0)):
    inputs = {"x": ArrayRegion.wrap(x, lo=lo)}
    results, _ = execute(program, inputs, target)
    (output,) = [f.name for f in program.output_fields]
    return results[output].view(target)


@pytest.fixture()
def diamond_program():
    """x -> a, b (independent) -> y; plus one dead stage d."""
    return StencilProgram.build(
        "diamond",
        inputs=(Field("x", FieldRole.INPUT),),
        stages=(
            Stage("a", "a", Access("x", (-1, 0, 0)) * 2.0),
            Stage("dead", "d", Access("x") + 5.0),
            Stage("b", "b", Access("x", (1, 0, 0)) + 1.0),
            Stage("y", "y", Access("a", (0, 1, 0)) + Access("b", (0, -1, 0))),
        ),
        outputs=("y",),
    )


class TestShiftExpr:
    def test_shift_access(self):
        shifted = shift_expr(Access("f", (1, 0, -1)), (1, 2, 3))
        assert shifted == Access("f", (2, 2, 2))

    def test_shift_tree(self):
        expr = Access("a") + Access("b", (0, 1, 0)) * 2.0
        shifted = shift_expr(expr, (1, 0, 0))
        fp = shifted.footprint()
        assert fp == {"a": {(1, 0, 0)}, "b": {(1, 1, 0)}}

    def test_constants_untouched(self):
        from repro.stencil import Const

        assert shift_expr(Const(3.0), (1, 1, 1)) == Const(3.0)

    def test_shift_semantics(self):
        """shift(e, d) at p equals e at p+d."""
        rng = np.random.default_rng(0)
        arr = rng.random((8, 8, 8))

        def resolve(name, offset):
            return np.roll(arr, tuple(-d for d in offset), axis=(0, 1, 2))

        expr = Access("f", (1, 0, 0)) * 2.0 + Access("f", (0, -1, 0))
        shifted = shift_expr(expr, (0, 0, 1))
        np.testing.assert_array_equal(
            shifted.evaluate(resolve),
            np.roll(expr.evaluate(resolve), -1, axis=2),
        )


class TestSubstitute:
    def test_replaces_with_shifted_definition(self):
        definition = Access("x", (-1, 0, 0)) + Access("x", (1, 0, 0))
        consumer = Access("t", (0, 1, 0)) * 3.0
        result = substitute_field(consumer, "t", definition)
        fp = result.footprint()
        assert fp == {"x": {(-1, 1, 0), (1, 1, 0)}}

    def test_leaves_other_fields(self):
        consumer = Access("u") + Access("t")
        result = substitute_field(consumer, "t", Access("x"))
        assert result.footprint() == {"u": {(0, 0, 0)}, "x": {(0, 0, 0)}}


class TestDeadStageElimination:
    def test_removes_dead_stage(self, diamond_program):
        cleaned = eliminate_dead_stages(diamond_program)
        assert [s.name for s in cleaned.stages] == ["a", "b", "y"]
        assert "d" not in {f.name for f in cleaned.fields}

    def test_removes_dead_chains(self):
        program = StencilProgram.build(
            "chain-dead",
            inputs=(Field("x", FieldRole.INPUT),),
            stages=(
                Stage("d1", "d1", Access("x")),
                Stage("d2", "d2", Access("d1") * 2.0),
                Stage("y", "y", Access("x") + 1.0),
            ),
            outputs=("y",),
        )
        cleaned = eliminate_dead_stages(program)
        assert [s.name for s in cleaned.stages] == ["y"]

    def test_preserves_values(self, diamond_program):
        rng = np.random.default_rng(1)
        x = rng.random((16, 16, 4))
        target = Box((0, 0, 0), (8, 8, 4))
        np.testing.assert_array_equal(
            _run(diamond_program, x, target, lo=(-4, -4, 0)),
            _run(eliminate_dead_stages(diamond_program), x, target, lo=(-4, -4, 0)),
        )

    def test_mpdata_unchanged(self, mpdata):
        assert eliminate_dead_stages(mpdata) == mpdata


class TestLevelSchedule:
    def test_level_order(self, diamond_program):
        scheduled = schedule_by_levels(diamond_program)
        names = [s.name for s in scheduled.stages]
        assert names == ["a", "dead", "b", "y"]

    def test_preserves_values(self, mpdata):
        from repro.mpdata import MpdataSolver, random_state

        shape = (12, 10, 8)
        state = random_state(shape, seed=9)
        original = MpdataSolver(shape, program=mpdata).step(state)
        scheduled = MpdataSolver(
            shape, program=schedule_by_levels(mpdata)
        ).step(state)
        np.testing.assert_array_equal(original, scheduled)

    def test_mpdata_fluxes_grouped(self, mpdata):
        scheduled = schedule_by_levels(mpdata)
        names = [s.name for s in scheduled.stages[:3]]
        assert names == ["flux_i", "flux_j", "flux_k"]


class TestInlining:
    def test_inline_single_stage_preserves_values(self, chain_program):
        rng = np.random.default_rng(2)
        x = rng.random((20, 4, 4))
        target = Box((0, 0, 0), (8, 4, 4))
        inlined = inline_stage(chain_program, "s2")
        assert len(inlined.stages) == 2
        np.testing.assert_array_equal(
            _run(chain_program, x, target), _run(inlined, x, target)
        )

    def test_inline_widens_footprint(self, chain_program):
        inlined = inline_stage(chain_program, "s2")
        final = inlined.stages[-1]
        # y now reads a at +-2 directly.
        assert final.footprint["a"] == {(-2, 0, 0), (0, 0, 0), (2, 0, 0)}

    def test_inline_grows_flops(self, chain_program):
        inlined = inline_stage(chain_program, "s2")
        assert inlined.flops_per_point > chain_program.flops_per_point - 1

    def test_cannot_inline_output(self, chain_program):
        with pytest.raises(ValueError, match="temporaries"):
            inline_stage(chain_program, "s3")

    def test_inline_all_reaches_single_stage(self, chain_program):
        mega = inline_all_temporaries(chain_program)
        assert len(mega.stages) == 1
        # The mega-stage reads x at offsets -3..3 (odd offsets cancel out
        # structurally, but every combination +-1+-1+-1 appears).
        offsets = {o[0] for o in mega.stages[0].footprint["x"]}
        assert offsets == {-3, -1, 1, 3}

    def test_inline_all_preserves_values(self, chain_program):
        rng = np.random.default_rng(3)
        x = rng.random((20, 4, 4))
        target = Box((0, 0, 0), (8, 4, 4))
        mega = inline_all_temporaries(chain_program)
        np.testing.assert_array_equal(
            _run(chain_program, x, target), _run(mega, x, target)
        )

    def test_growth_budget_respected(self, mpdata):
        limited = inline_all_temporaries(mpdata, max_flop_growth=1.05)
        assert limited.flops_per_point <= mpdata.flops_per_point * 1.05
        # With such a tight budget, some temporaries must survive.
        assert len(limited.temporary_fields) > 0

    def test_budget_validation(self, chain_program):
        with pytest.raises(ValueError):
            inline_all_temporaries(chain_program, max_flop_growth=0.5)

    def test_inline_removes_intermediate_halo_from_schedule(self, chain_program):
        """After full inlining there is no intermediate to recompute:
        all redundancy moves into the input halo."""
        from repro.stencil import required_regions

        mega = inline_all_temporaries(chain_program)
        target = Box((8, 0, 0), (16, 4, 4))
        plan = required_regions(mega, target)
        assert plan.extra_points() == 0
        assert plan.input_boxes["x"] == Box((5, 0, 0), (19, 4, 4))

"""Unit tests for program structure and validation."""

import pytest

from repro.stencil import (
    Access,
    Field,
    FieldRole,
    ProgramError,
    Stage,
    StencilProgram,
)


def _field(name, role=FieldRole.INPUT):
    return Field(name, role)


class TestFieldDeclarations:
    def test_roles(self):
        assert _field("x").is_input
        assert Field("y", FieldRole.OUTPUT).is_output
        assert Field("t", FieldRole.TEMPORARY).is_temporary

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Field("", FieldRole.INPUT)

    def test_rejects_nonpositive_itemsize(self):
        with pytest.raises(ValueError):
            Field("x", FieldRole.INPUT, itemsize=0)


class TestBuild:
    def test_build_synthesizes_temporaries(self):
        program = StencilProgram.build(
            "p",
            inputs=(_field("x"),),
            stages=(
                Stage("s1", "t", Access("x") + 1.0),
                Stage("s2", "y", Access("t") * 2.0),
            ),
            outputs=("y",),
        )
        roles = {f.name: f.role for f in program.fields}
        assert roles["t"] is FieldRole.TEMPORARY
        assert roles["y"] is FieldRole.OUTPUT

    def test_build_rejects_unproduced_output(self):
        with pytest.raises(ProgramError, match="never produced"):
            StencilProgram.build(
                "p",
                inputs=(_field("x"),),
                stages=(Stage("s1", "t", Access("x")),),
                outputs=("y",),
            )


class TestValidation:
    def test_read_before_write_rejected(self):
        with pytest.raises(ProgramError, match="before it is produced"):
            StencilProgram.build(
                "p",
                inputs=(_field("x"),),
                stages=(
                    Stage("s1", "y", Access("t")),
                    Stage("s2", "t", Access("x")),
                ),
                outputs=("y",),
            )

    def test_double_write_rejected(self):
        with pytest.raises(ProgramError, match="more than once"):
            StencilProgram.build(
                "p",
                inputs=(_field("x"),),
                stages=(
                    Stage("s1", "y", Access("x")),
                    Stage("s2", "y", Access("x") + 1.0),
                ),
                outputs=("y",),
            )

    def test_writing_an_input_rejected(self):
        with pytest.raises(ProgramError, match="writes program input"):
            StencilProgram(
                "p",
                (_field("x"),),
                (Stage("s1", "x", Access("x")),),
            )

    def test_undeclared_read_rejected(self):
        with pytest.raises(ProgramError, match="reads undeclared"):
            StencilProgram(
                "p",
                (_field("x"), Field("y", FieldRole.OUTPUT)),
                (Stage("s1", "y", Access("z")),),
            )

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ProgramError, match="duplicate"):
            StencilProgram("p", (_field("x"), _field("x")), ())


class TestQueries:
    def test_dependency_edges(self, chain_program):
        assert chain_program.dependency_edges() == [(0, 1), (1, 2)]

    def test_consumers(self, chain_program):
        assert chain_program.consumers_of(0) == [1]
        assert chain_program.consumers_of(2) == []

    def test_producer_of(self, chain_program):
        assert chain_program.producer_of("a") == 0
        assert chain_program.producer_of("x") is None

    def test_stage_index(self, chain_program):
        assert chain_program.stage_index("s2") == 1
        with pytest.raises(KeyError):
            chain_program.stage_index("nope")

    def test_field_partitions(self, chain_program):
        assert [f.name for f in chain_program.input_fields] == ["x"]
        assert [f.name for f in chain_program.output_fields] == ["y"]
        assert {f.name for f in chain_program.temporary_fields} == {"a", "b"}

    def test_flops_per_point(self, chain_program):
        assert chain_program.flops_per_point == 3

    def test_io_bytes_per_point(self, chain_program):
        # one input + one output, 8 bytes each
        assert chain_program.bytes_per_point_io() == 16

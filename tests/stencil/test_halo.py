"""Tests for the backward transitive halo analysis — the heart of the
islands-of-cores redundancy accounting."""

from hypothesis import given, settings, strategies as st

from repro.stencil import (
    Access,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    program_halo_depth,
    required_regions,
    stage_expansions,
)


class TestChainProgram:
    """Exact expectations on the 3-stage 1D chain (halo 1 per stage)."""

    def test_stage_boxes_grow_backwards(self, chain_program):
        target = Box((10, 0, 0), (20, 4, 4))
        plan = required_regions(chain_program, target)
        # s3 computes the target, s2 one layer wider, s1 two layers wider.
        assert plan.stage_boxes[2] == target
        assert plan.stage_boxes[1] == Box((9, 0, 0), (21, 4, 4))
        assert plan.stage_boxes[0] == Box((8, 0, 0), (22, 4, 4))

    def test_input_requirement(self, chain_program):
        target = Box((10, 0, 0), (20, 4, 4))
        plan = required_regions(chain_program, target)
        assert plan.input_boxes["x"] == Box((7, 0, 0), (23, 4, 4))

    def test_clipping_to_domain(self, chain_program):
        domain = Box((0, 0, 0), (20, 4, 4))
        target = Box((10, 0, 0), (20, 4, 4))
        plan = required_regions(chain_program, target, domain=domain)
        # Upper side clipped at 20, lower side extends normally.
        assert plan.stage_boxes[1] == Box((9, 0, 0), (20, 4, 4))
        assert plan.stage_boxes[0] == Box((8, 0, 0), (20, 4, 4))
        assert plan.input_boxes["x"] == Box((7, 0, 0), (20, 4, 4))

    def test_extra_points(self, chain_program):
        target = Box((10, 0, 0), (20, 4, 4))
        plan = required_regions(chain_program, target)
        # s3: 0 extra; s2: 2 planes of 16; s1: 4 planes of 16.
        assert plan.extra_points() == (2 + 4) * 16

    def test_compute_points(self, chain_program):
        target = Box((10, 0, 0), (20, 4, 4))
        plan = required_regions(chain_program, target)
        assert plan.compute_points() == (10 + 12 + 14) * 16

    def test_halo_depth(self, chain_program):
        lo, hi = program_halo_depth(chain_program)
        assert lo == (2, 0, 0)
        assert hi == (2, 0, 0)

    def test_stage_expansions(self, chain_program):
        expansions = stage_expansions(chain_program)
        assert expansions[2] == ((0, 0, 0), (0, 0, 0))
        assert expansions[1] == ((1, 0, 0), (1, 0, 0))
        assert expansions[0] == ((2, 0, 0), (2, 0, 0))


class TestUnusedStages:
    def test_stage_not_feeding_output_gets_empty_box(self):
        program = StencilProgram.build(
            "dead",
            inputs=(Field("x", FieldRole.INPUT),),
            stages=(
                Stage("used", "t", Access("x")),
                Stage("dead", "d", Access("x") * 2.0),
                Stage("out", "y", Access("t") + 1.0),
            ),
            outputs=("y",),
        )
        plan = required_regions(program, Box((0, 0, 0), (4, 4, 4)))
        assert plan.stage_boxes[1].is_empty()
        assert not plan.stage_boxes[0].is_empty()


class TestMpdataHalos:
    def test_mpdata_halo_depth(self, mpdata):
        lo, hi = program_halo_depth(mpdata)
        # Transitive stage-compute halo of the 17-stage chain: 2 below and
        # 3 above on every axis (face-staggered arrays skew it upward).
        assert lo == (2, 2, 2)
        assert hi == (3, 3, 3)

    def test_targets_always_contained(self, mpdata):
        target = Box((8, 8, 8), (16, 16, 16))
        plan = required_regions(mpdata, target)
        for stage, box in zip(mpdata.stages, plan.stage_boxes):
            if stage.output == "x_out":
                assert box == target
        # Final stage exactly covers the target; everything else covers it.
        for box in plan.stage_boxes:
            assert box.contains(target)

    def test_no_clip_no_extra_for_whole_domain_interior(self, mpdata):
        domain = Box((0, 0, 0), (32, 24, 16))
        plan = required_regions(mpdata, domain, domain=domain)
        assert plan.extra_points() == 0


class TestPlanProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        lo=st.integers(5, 15),
        width=st.integers(1, 10),
        cross=st.integers(1, 6),
    )
    def test_monotone_in_target(self, chain_program, lo, width, cross):
        """A larger target never needs smaller stage regions."""
        small = Box((lo, 0, 0), (lo + width, cross, cross))
        large = Box((lo - 1, 0, 0), (lo + width + 1, cross, cross))
        plan_small = required_regions(chain_program, small)
        plan_large = required_regions(chain_program, large)
        for a, b in zip(plan_small.stage_boxes, plan_large.stage_boxes):
            assert b.contains(a)

    @settings(max_examples=30, deadline=None)
    @given(lo=st.integers(0, 10), width=st.integers(1, 8))
    def test_clipped_plan_subset_of_unclipped(self, chain_program, lo, width):
        domain = Box((0, 0, 0), (24, 4, 4))
        target = Box((lo, 0, 0), (lo + width, 4, 4))
        clipped = required_regions(chain_program, target, domain=domain)
        free = required_regions(chain_program, target)
        for a, b in zip(clipped.stage_boxes, free.stage_boxes):
            assert b.contains(a)
        assert clipped.extra_points() <= free.extra_points()

"""Tests for the stencil-program compiler (codegen)."""

import numpy as np
import pytest

from repro.mpdata import MpdataSolver, mpdata_program, random_state
from repro.stencil import (
    Access,
    ArrayRegion,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    Workspace,
    compile_plan,
    compile_program,
    execute_plan,
    full_box,
    required_regions,
)


class TestCompileChain:
    def test_bit_exact_vs_interpreter(self, chain_program):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((18, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        target = Box((0, 0, 0), (12, 4, 4))
        plan = required_regions(chain_program, target)
        compiled = compile_plan(chain_program, plan)
        expected, _ = execute_plan(chain_program, plan, inputs)
        actual = compiled(inputs)
        np.testing.assert_array_equal(
            actual["y"].data, expected["y"].data
        )
        assert actual["y"].box == expected["y"].box

    def test_source_is_inspectable(self, chain_program):
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        assert "def _step(x):" in compiled.source
        assert "np.add" in compiled.source
        assert "# stage 3: s3 -> y" in compiled.source

    def test_keep_temporaries(self, chain_program):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((14, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        results = compiled(inputs, keep_temporaries=True)
        assert set(results) == {"a", "b", "y"}

    def test_insufficient_input_rejected(self, chain_program):
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        small = {"x": ArrayRegion.wrap(np.zeros((8, 4, 4)))}
        with pytest.raises(ValueError, match="required"):
            compiled(small)

    def test_dtype_respected(self, chain_program):
        x = np.zeros((14, 4, 4), dtype=np.float32)
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        compiled = compile_program(
            chain_program, Box((0, 0, 0), (8, 4, 4)), dtype=np.float32
        )
        assert compiled(inputs)["y"].data.dtype == np.float32


class TestCompileMpdata:
    def test_full_step_bit_exact(self, mpdata):
        shape = (16, 12, 8)
        solver = MpdataSolver(shape)
        state = random_state(shape, seed=5)
        inputs = solver.prepare_inputs(state)
        plan = required_regions(
            mpdata, solver.domain, domain=solver.extended_domain
        )
        compiled = compile_plan(mpdata, plan)
        expected, _ = execute_plan(mpdata, plan, inputs)
        actual = compiled(inputs)
        np.testing.assert_array_equal(
            actual["x_out"].data, expected["x_out"].data
        )

    def test_solver_compiled_flag(self):
        shape = (14, 10, 8)
        state = random_state(shape, seed=6)
        plain = MpdataSolver(shape).run(state, 3)
        fast = MpdataSolver(shape, compiled=True).run(state, 3)
        np.testing.assert_array_equal(plain, fast)

    def test_islands_compiled_flag(self):
        from repro.runtime import MpdataIslandSolver

        shape = (14, 10, 8)
        state = random_state(shape, seed=7)
        plain = MpdataIslandSolver(shape, 3).run(state, 2)
        fast = MpdataIslandSolver(shape, 3, compiled=True, threads=3).run(
            state, 2
        )
        np.testing.assert_array_equal(plain, fast)

    def test_all_17_stages_in_source(self, mpdata):
        compiled = compile_program(mpdata, full_box((16, 16, 8)))
        for stage in mpdata.stages:
            assert f"-> {stage.output}" in compiled.source

    def test_clipped_plan_without_ghosts_rejected(self, mpdata):
        """Clipping to the bare domain leaves reads that escape the
        available data; compilation must fail loudly (the interpreter
        raises at run time; silent negative slices would wrap)."""
        domain = full_box((16, 16, 8))
        with pytest.raises(ValueError, match="ghost"):
            compile_program(mpdata, domain, domain=domain)


class TestWorkspaceGuards:
    def test_reset_drops_buffers_but_keeps_counters(self):
        ws = Workspace()
        ws.out("a", (4, 4))
        ws.scratch(0, (8,))
        ws.mask(0, (8,))
        assert ws.allocations == 3
        ws.reset()
        report = ws.capacity_report()
        assert report["buffers"] == 0
        assert report["total_bytes"] == 0
        assert ws.allocations == 3  # cumulative across resets
        ws.out("a", (4, 4))
        assert ws.allocations == 4  # fresh allocation, not a stale reuse

    def test_capacity_report_contents(self):
        ws = Workspace(max_elems=64)
        ws.out("y", (2, 3, 4))
        ws.scratch(1, (10,))
        report = ws.capacity_report()
        assert report["outputs"] == {"y": (2, 3, 4)}
        assert report["scratch_elems"] == {1: 10}
        assert report["buffers"] == 2
        assert report["total_bytes"] == (24 + 10) * 8
        assert report["max_elems"] == 64

    def test_sized_workspace_refuses_oversized_requests(self):
        ws = Workspace(max_elems=10)
        ws.out("a", (2, 5))  # exactly at the cap: fine
        with pytest.raises(ValueError, match="sized for 10"):
            ws.out("b", (11,))
        with pytest.raises(ValueError, match="sized for 10"):
            ws.scratch(0, (4, 4))
        with pytest.raises(ValueError, match="sized for 10"):
            ws.mask(0, (16,))

    def test_sized_workspace_pins_output_shapes(self):
        """A block-sized workspace must never silently hand back a stale
        buffer for a differently-shaped request — that is the aliasing
        bug the sizing exists to prevent."""
        ws = Workspace(max_elems=100)
        first = ws.out("y", (4, 5))
        again = ws.out("y", (4, 5))
        assert again is first
        with pytest.raises(ValueError, match="pinned"):
            ws.out("y", (5, 4))

    def test_unsized_workspace_still_reallocates_freely(self):
        ws = Workspace()
        first = ws.out("y", (4, 5))
        second = ws.out("y", (5, 4))
        assert second.shape == (5, 4)
        assert second is not first

    def test_compiled_plan_rejects_mismatched_workspace_dtype(self, chain_program):
        compiled = compile_program(
            chain_program, Box((0, 0, 0), (8, 4, 4)), dtype=np.float32
        )
        with pytest.raises(ValueError, match="dtype"):
            compiled.use_workspace(Workspace(np.float64))

    def test_stage_seconds_accumulate_when_timed(self, chain_program):
        target = Box((0, 0, 0), (8, 4, 4))
        plan = required_regions(chain_program, target)
        compiled = compile_plan(chain_program, plan, timed=True)
        x = np.random.default_rng(2).standard_normal((14, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        compiled(inputs)
        first = dict(compiled.stage_seconds)
        assert set(first) == {"s1", "s2", "s3"}
        compiled(inputs)
        second = compiled.stage_seconds
        assert all(second[name] >= first[name] for name in first)

    def test_untimed_plan_has_no_stage_seconds(self, chain_program):
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        assert compiled.timed is False
        assert compiled.stage_seconds is None


class TestCompileValidation:
    def test_reserved_field_name_rejected(self):
        program = StencilProgram.build(
            "bad",
            inputs=(Field("np", FieldRole.INPUT),),
            stages=(Stage("s", "y", Access("np")),),
            outputs=("y",),
        )
        with pytest.raises(ValueError, match="identifier"):
            compile_program(program, Box((0, 0, 0), (4, 4, 4)))

    def test_underscore_field_name_rejected(self):
        program = StencilProgram.build(
            "bad",
            inputs=(Field("_x", FieldRole.INPUT),),
            stages=(Stage("s", "y", Access("_x")),),
            outputs=("y",),
        )
        with pytest.raises(ValueError, match="identifier"):
            compile_program(program, Box((0, 0, 0), (4, 4, 4)))

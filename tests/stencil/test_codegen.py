"""Tests for the stencil-program compiler (codegen)."""

import numpy as np
import pytest

from repro.mpdata import MpdataSolver, mpdata_program, random_state
from repro.stencil import (
    Access,
    ArrayRegion,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    compile_plan,
    compile_program,
    execute_plan,
    full_box,
    required_regions,
)


class TestCompileChain:
    def test_bit_exact_vs_interpreter(self, chain_program):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((18, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        target = Box((0, 0, 0), (12, 4, 4))
        plan = required_regions(chain_program, target)
        compiled = compile_plan(chain_program, plan)
        expected, _ = execute_plan(chain_program, plan, inputs)
        actual = compiled(inputs)
        np.testing.assert_array_equal(
            actual["y"].data, expected["y"].data
        )
        assert actual["y"].box == expected["y"].box

    def test_source_is_inspectable(self, chain_program):
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        assert "def _step(x):" in compiled.source
        assert "np.add" in compiled.source
        assert "# stage 3: s3 -> y" in compiled.source

    def test_keep_temporaries(self, chain_program):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((14, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        results = compiled(inputs, keep_temporaries=True)
        assert set(results) == {"a", "b", "y"}

    def test_insufficient_input_rejected(self, chain_program):
        compiled = compile_program(chain_program, Box((0, 0, 0), (8, 4, 4)))
        small = {"x": ArrayRegion.wrap(np.zeros((8, 4, 4)))}
        with pytest.raises(ValueError, match="required"):
            compiled(small)

    def test_dtype_respected(self, chain_program):
        x = np.zeros((14, 4, 4), dtype=np.float32)
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        compiled = compile_program(
            chain_program, Box((0, 0, 0), (8, 4, 4)), dtype=np.float32
        )
        assert compiled(inputs)["y"].data.dtype == np.float32


class TestCompileMpdata:
    def test_full_step_bit_exact(self, mpdata):
        shape = (16, 12, 8)
        solver = MpdataSolver(shape)
        state = random_state(shape, seed=5)
        inputs = solver.prepare_inputs(state)
        plan = required_regions(
            mpdata, solver.domain, domain=solver.extended_domain
        )
        compiled = compile_plan(mpdata, plan)
        expected, _ = execute_plan(mpdata, plan, inputs)
        actual = compiled(inputs)
        np.testing.assert_array_equal(
            actual["x_out"].data, expected["x_out"].data
        )

    def test_solver_compiled_flag(self):
        shape = (14, 10, 8)
        state = random_state(shape, seed=6)
        plain = MpdataSolver(shape).run(state, 3)
        fast = MpdataSolver(shape, compiled=True).run(state, 3)
        np.testing.assert_array_equal(plain, fast)

    def test_islands_compiled_flag(self):
        from repro.runtime import MpdataIslandSolver

        shape = (14, 10, 8)
        state = random_state(shape, seed=7)
        plain = MpdataIslandSolver(shape, 3).run(state, 2)
        fast = MpdataIslandSolver(shape, 3, compiled=True, threads=3).run(
            state, 2
        )
        np.testing.assert_array_equal(plain, fast)

    def test_all_17_stages_in_source(self, mpdata):
        compiled = compile_program(mpdata, full_box((16, 16, 8)))
        for stage in mpdata.stages:
            assert f"-> {stage.output}" in compiled.source

    def test_clipped_plan_without_ghosts_rejected(self, mpdata):
        """Clipping to the bare domain leaves reads that escape the
        available data; compilation must fail loudly (the interpreter
        raises at run time; silent negative slices would wrap)."""
        domain = full_box((16, 16, 8))
        with pytest.raises(ValueError, match="ghost"):
            compile_program(mpdata, domain, domain=domain)


class TestCompileValidation:
    def test_reserved_field_name_rejected(self):
        program = StencilProgram.build(
            "bad",
            inputs=(Field("np", FieldRole.INPUT),),
            stages=(Stage("s", "y", Access("np")),),
            outputs=("y",),
        )
        with pytest.raises(ValueError, match="identifier"):
            compile_program(program, Box((0, 0, 0), (4, 4, 4)))

    def test_underscore_field_name_rejected(self):
        program = StencilProgram.build(
            "bad",
            inputs=(Field("_x", FieldRole.INPUT),),
            stages=(Stage("s", "y", Access("_x")),),
            outputs=("y",),
        )
        with pytest.raises(ValueError, match="identifier"):
            compile_program(program, Box((0, 0, 0), (4, 4, 4)))

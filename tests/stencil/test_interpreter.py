"""Tests for the vectorized interpreter."""

import numpy as np
import pytest

from repro.stencil import (
    Access,
    ArrayRegion,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    execute,
    execute_plan,
    full_box,
    required_regions,
)


@pytest.fixture()
def diff_program():
    """y[i] = x[i+1] - x[i-1], a centred difference in i."""
    return StencilProgram.build(
        "diff",
        inputs=(Field("x", FieldRole.INPUT),),
        stages=(
            Stage("d", "y", Access("x", (1, 0, 0)) - Access("x", (-1, 0, 0))),
        ),
        outputs=("y",),
    )


class TestArrayRegion:
    def test_wrap_anchors_origin(self):
        data = np.zeros((2, 3, 4))
        region = ArrayRegion.wrap(data, lo=(1, 1, 1))
        assert region.box == Box((1, 1, 1), (3, 4, 5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayRegion(np.zeros((2, 2, 2)), Box((0, 0, 0), (3, 2, 2)))

    def test_view_requires_containment(self):
        region = ArrayRegion.wrap(np.arange(8.0).reshape(2, 2, 2))
        with pytest.raises(ValueError):
            region.view(Box((0, 0, 0), (3, 2, 2)))

    def test_view_returns_correct_slice(self):
        data = np.arange(27.0).reshape(3, 3, 3)
        region = ArrayRegion.wrap(data, lo=(-1, -1, -1))
        np.testing.assert_array_equal(
            region.view(Box((0, 0, 0), (1, 1, 1))), data[1:2, 1:2, 1:2]
        )


class TestExecute:
    def test_centred_difference(self, diff_program):
        x = np.arange(6.0 * 2 * 2).reshape(6, 2, 2)
        inputs = {"x": ArrayRegion.wrap(x, lo=(-1, 0, 0))}
        target = Box((0, 0, 0), (4, 2, 2))
        results, stats = execute(diff_program, inputs, target)
        expected = x[2:6] - x[0:4]
        np.testing.assert_array_equal(results["y"].view(target), expected)
        assert stats.points == target.size
        assert stats.flops == target.size  # one sub per point

    def test_missing_input_rejected(self, diff_program):
        with pytest.raises(KeyError, match="x"):
            execute(diff_program, {}, Box((0, 0, 0), (2, 2, 2)))

    def test_insufficient_coverage_rejected(self, diff_program):
        x = np.zeros((4, 2, 2))
        inputs = {"x": ArrayRegion.wrap(x)}  # covers [0,4), need [-1,5)
        with pytest.raises(ValueError, match="required"):
            execute(diff_program, inputs, Box((0, 0, 0), (4, 2, 2)))

    def test_keep_temporaries(self, chain_program):
        x = np.random.default_rng(0).random((12, 3, 3))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        target = Box((0, 0, 0), (6, 3, 3))
        results, _ = execute(
            chain_program, inputs, target, keep_temporaries=True
        )
        assert set(results) == {"y", "a", "b"}
        # a = x[i-1] + x[i+1] over the expanded region
        a_box = results["a"].box
        assert a_box.contains(Box((-2, 0, 0), (8, 3, 3)))

    def test_region_execution_matches_whole(self, chain_program):
        """Computing a sub-target yields the same values as a full run —
        the property the islands approach rests on."""
        rng = np.random.default_rng(3)
        x = rng.random((18, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        whole_target = Box((0, 0, 0), (12, 4, 4))
        whole, _ = execute(chain_program, inputs, whole_target)
        part_target = Box((4, 0, 0), (9, 4, 4))
        part, _ = execute(chain_program, inputs, part_target)
        np.testing.assert_array_equal(
            part["y"].view(part_target), whole["y"].view(part_target)
        )

    def test_dtype_respected(self, diff_program):
        x = np.zeros((6, 2, 2), dtype=np.float32)
        inputs = {"x": ArrayRegion.wrap(x, lo=(-1, 0, 0))}
        results, _ = execute(
            diff_program, inputs, Box((0, 0, 0), (4, 2, 2)), dtype=np.float32
        )
        assert results["y"].data.dtype == np.float32

    def test_stats_count_redundant_points(self, chain_program):
        x = np.zeros((20, 2, 2))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        target = Box((0, 0, 0), (10, 2, 2))
        plan = required_regions(chain_program, target)
        _, stats = execute(chain_program, inputs, target)
        assert stats.points == plan.compute_points()


class TestBufferReuse:
    def test_bit_exact_with_arena(self, mpdata):
        from repro.mpdata import MpdataSolver, random_state
        from repro.stencil import required_regions

        shape = (16, 12, 8)
        solver = MpdataSolver(shape)
        state = random_state(shape, seed=12)
        inputs = solver.prepare_inputs(state)
        plan = required_regions(
            mpdata, solver.domain, domain=solver.extended_domain
        )
        plain, stats_plain = execute_plan(mpdata, plan, inputs)
        reuse, stats_reuse = execute_plan(
            mpdata, plan, inputs, reuse_buffers=True
        )
        np.testing.assert_array_equal(
            plain["x_out"].data, reuse["x_out"].data
        )
        assert stats_reuse.allocations < stats_plain.allocations
        assert stats_reuse.reused_buffers > 0
        assert (
            stats_reuse.allocations + stats_reuse.reused_buffers
            == stats_plain.allocations
        )

    def test_exclusive_with_keep_temporaries(self, chain_program):
        x = np.zeros((20, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        with pytest.raises(ValueError, match="exclusive"):
            execute(
                chain_program, inputs, Box((0, 0, 0), (10, 4, 4)),
                keep_temporaries=True, reuse_buffers=True,
            )

    def test_chain_reuses_dead_stage(self, chain_program):
        rng = np.random.default_rng(4)
        x = rng.random((20, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(-3, 0, 0))}
        target = Box((0, 0, 0), (10, 4, 4))
        plain, _ = execute(chain_program, inputs, target)
        reused, stats = execute(
            chain_program, inputs, target, reuse_buffers=True
        )
        np.testing.assert_array_equal(plain["y"].data, reused["y"].data)
        # b can live in a's retired buffer; y in b's... but y is an output
        # allocated after b retires, so at least one reuse fires.
        assert stats.reused_buffers >= 1

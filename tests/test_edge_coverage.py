"""Edge-path coverage across packages: small behaviours the focused suites
skip (identity routes, Where codegen, setup overrides, error propagation)."""

import numpy as np
import pytest

from repro.core import scenario_costs, Variant, partition_domain
from repro.experiments import ExperimentSetup
from repro.machine import sgi_uv2000
from repro.mpdata import mpdata_program
from repro.runtime import PartitionedRunner
from repro.stencil import (
    Access,
    ArrayRegion,
    Box,
    Const,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    Where,
    compile_program,
    execute,
    full_box,
)


class TestWhereThroughTheToolchain:
    """MPDATA never uses Where; make sure the whole chain still does."""

    @pytest.fixture()
    def clamp_program(self):
        # y = x where x > 0 else 0.25 * x[i+1]  (a leaky clamp)
        expr = Where(Access("x"), Access("x"), 0.25 * Access("x", (1, 0, 0)))
        return StencilProgram.build(
            "clamp",
            inputs=(Field("x", FieldRole.INPUT),),
            stages=(Stage("clamp", "y", expr),),
            outputs=("y",),
        )

    def test_interpreter(self, clamp_program):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((10, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(0, 0, 0))}
        target = Box((0, 0, 0), (9, 4, 4))
        results, _ = execute(clamp_program, inputs, target)
        expected = np.where(x[:9] > 0, x[:9], 0.25 * x[1:10])
        np.testing.assert_array_equal(results["y"].view(target), expected)

    def test_codegen_matches_interpreter(self, clamp_program):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((10, 4, 4))
        inputs = {"x": ArrayRegion.wrap(x, lo=(0, 0, 0))}
        target = Box((0, 0, 0), (9, 4, 4))
        interpreted, _ = execute(clamp_program, inputs, target)
        compiled = compile_program(clamp_program, target)
        np.testing.assert_array_equal(
            compiled(inputs)["y"].data, interpreted["y"].data
        )

    def test_islands_bit_exact(self, clamp_program):
        rng = np.random.default_rng(2)
        arrays = {"x": rng.standard_normal((16, 8, 4))}
        whole = PartitionedRunner(clamp_program, (16, 8, 4), islands=1)
        split = PartitionedRunner(clamp_program, (16, 8, 4), islands=3)
        np.testing.assert_array_equal(
            whole.step(arrays), split.step(arrays)
        )


class TestSmallBehaviours:
    def test_same_node_path_bandwidth_infinite(self):
        machine = sgi_uv2000()
        assert machine.path_bandwidth(5, 5) == float("inf")

    def test_experiment_setup_overrides(self):
        setup = ExperimentSetup.paper(
            processors=(1, 3), shape=(64, 32, 16), steps=7
        )
        assert setup.processors == (1, 3)
        assert setup.shape == (64, 32, 16)
        assert setup.steps == 7

    def test_scenario_advantage_property(self, mpdata):
        partition = partition_domain(full_box((64, 32, 8)), 2, Variant.A)
        costs = scenario_costs(mpdata, partition, 1e-9, 6.7e9, 1e-5)
        assert costs.advantage == pytest.approx(
            costs.communicate_seconds / costs.recompute_seconds
        )

    def test_threaded_runner_propagates_errors(self, mpdata):
        """An island failure must surface, not vanish in the pool."""
        runner = PartitionedRunner(mpdata, (16, 12, 8), islands=4, threads=4)
        bad = {
            "x": np.zeros((16, 12, 8)),
            "u1": np.zeros((16, 12, 8)),
            "u2": np.zeros((16, 12, 8)),
            # u3 missing entirely
            "h": np.ones((16, 12, 8)),
        }
        with pytest.raises(KeyError):
            runner.step(bad)

    def test_const_only_stage(self):
        program = StencilProgram.build(
            "konst",
            inputs=(Field("x", FieldRole.INPUT),),
            stages=(
                Stage("fill", "c", Const(4.0) + 0.0 * Access("x")),
                Stage("out", "y", Access("c") * 2.0),
            ),
            outputs=("y",),
        )
        arrays = {"x": np.random.default_rng(3).random((8, 4, 4))}
        out = PartitionedRunner(program, (8, 4, 4)).step(arrays)
        np.testing.assert_array_equal(out, np.full((8, 4, 4), 8.0))

    def test_program_repr_and_stage_repr(self, mpdata):
        assert "17 stages" in repr(mpdata)
        assert "flux_i" in repr(mpdata.stages[0])

    def test_box_repr(self):
        assert repr(Box((0, 0, 0), (1, 2, 3))) == "Box(lo=(0, 0, 0), hi=(1, 2, 3))"

"""Tests for traffic accounting, metrics and reporting."""

import pytest

from repro.analysis import (
    format_series,
    format_table,
    fused_traffic,
    original_bytes_per_point,
    original_traffic,
    relative_error_percent,
    stage_stream_bytes_per_point,
)
from repro.analysis.metrics import (
    ScalingRow,
    efficiency_percent,
    scaling_table,
    speedup_overall,
    speedup_partial,
    sustained_gflops,
    utilization_percent,
)
from repro.stencil import full_box, plan_blocks


class TestStageBytes:
    def test_flux_stage(self, mpdata):
        # flux_i reads x and u1 (two fields) and writes f1: 3 passes x 8 B.
        assert stage_stream_bytes_per_point(mpdata, 0) == 24

    def test_write_allocate_adds_output_read(self, mpdata):
        assert (
            stage_stream_bytes_per_point(mpdata, 0, write_allocate=True) == 32
        )

    def test_mpdata_total_matches_known_value(self, mpdata):
        """The IR-derived 616 B/point/step; the paper's likwid measurement
        implies ~634 (133 GB over 50 x 256x256x64 points)."""
        assert original_bytes_per_point(mpdata) == 616


class TestTrafficReports:
    def test_original_reproduces_sect32_measurement(self, mpdata):
        report = original_traffic(mpdata, full_box((256, 256, 64)), 50)
        assert report.gigabytes == pytest.approx(133.0, rel=0.05)

    def test_fused_is_much_smaller(self, mpdata):
        domain = full_box((256, 256, 64))
        blocks = plan_blocks(mpdata, domain, 25 * 1024 * 1024)
        fused = fused_traffic(mpdata, blocks, 50)
        original = original_traffic(mpdata, domain, 50)
        assert fused.total_bytes < original.total_bytes / 4

    def test_bytes_per_point_step(self, mpdata):
        domain = full_box((64, 64, 16))
        report = original_traffic(mpdata, domain, 10)
        assert report.bytes_per_point_step == pytest.approx(616.0)

    def test_smaller_blocks_more_traffic(self, mpdata):
        domain = full_box((128, 128, 32))
        big = fused_traffic(
            mpdata, plan_blocks(mpdata, domain, 16 * 1024 * 1024), 1
        )
        small = fused_traffic(
            mpdata, plan_blocks(mpdata, domain, 2 * 1024 * 1024), 1
        )
        assert small.total_bytes > big.total_bytes

    def test_read_write_split(self, mpdata):
        report = original_traffic(mpdata, full_box((32, 32, 8)), 1)
        # 17 stages write one 8-byte field each.
        assert report.write_bytes == 17 * 8 * 32 * 32 * 8
        assert report.total_bytes == 616 * 32 * 32 * 8


class TestMetrics:
    def test_speedups(self):
        assert speedup_partial(10.0, 2.0) == 5.0
        assert speedup_overall(8.0, 2.0) == 4.0

    def test_sustained(self):
        assert sustained_gflops(390e9, 1.0) == pytest.approx(390.0)
        with pytest.raises(ValueError):
            sustained_gflops(1.0, 0.0)

    def test_utilization(self):
        assert utilization_percent(390.1, 1478.4) == pytest.approx(26.4, abs=0.1)

    def test_efficiency_matches_paper_definition(self):
        # P=2: 30.40/15.40/2 = 98.7 %, exactly Table 4's value.
        assert efficiency_percent(30.40, 15.40, 2) == pytest.approx(98.7, abs=0.05)
        assert efficiency_percent(30.40, 2.81, 14) == pytest.approx(77.3, abs=0.05)

    def test_scaling_row_derived_columns(self):
        row = ScalingRow(14, 2.81, 10.40, 1.01, 394e9, 1478.4)
        assert row.s_pr == pytest.approx(10.3, abs=0.01)
        assert row.s_ov == pytest.approx(2.78, abs=0.01)
        assert row.sustained == pytest.approx(390.1, rel=0.01)

    def test_scaling_table_rejects_duplicates(self):
        row = ScalingRow(2, 1.0, 1.0, 1.0, 1e9, 211.2)
        with pytest.raises(ValueError, match="duplicate"):
            scaling_table([row, row])


class TestReport:
    def test_format_table_aligns(self):
        text = format_table("T", ["a", "bb"], [(1, 2.5), (30, 4.25)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text and "4.25" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table("T", ["a", "b"], [(1,)])

    def test_format_table_note(self):
        text = format_table("T", ["a"], [(1,)], note="hello")
        assert text.endswith("hello")

    def test_format_series(self):
        text = format_series("S", "P", [1, 2], [("t", [0.5, 0.25])])
        assert "0.25" in text

    def test_relative_error(self):
        assert relative_error_percent(11.0, 10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            relative_error_percent(1.0, 0.0)

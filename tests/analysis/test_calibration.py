"""Regression tests: the frozen cost-model constants must reproduce the
calibration fits, and the fitted model must track the paper's rows."""

import pytest

from repro import paperdata
from repro.analysis import calibrate_uv2000, fit_line
from repro.machine import simulate, sgi_uv2000, uv2000_costs
from repro.mpdata import mpdata_program
from repro.sched import build_fused_plan, build_islands_plan, build_original_plan


class TestFitHelpers:
    def test_fit_line_exact(self):
        intercept, slope = fit_line([1, 2, 3], [3, 5, 7])
        assert intercept == pytest.approx(1.0)
        assert slope == pytest.approx(2.0)

    def test_fit_line_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_line([1], [1])

    def test_fit_line_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_line([2, 2], [1, 3])


class TestFrozenConstants:
    def test_refit_matches_stored_defaults(self):
        fitted = calibrate_uv2000().costs
        stored = uv2000_costs()
        for name in stored.__dataclass_fields__:
            fitted_value = getattr(fitted, name)
            stored_value = getattr(stored, name)
            if stored_value == 0.0:
                assert fitted_value == pytest.approx(0.0, abs=1e-12)
            else:
                assert fitted_value == pytest.approx(stored_value, rel=1e-3), name

    def test_work_counts(self):
        result = calibrate_uv2000()
        assert result.bytes_per_point == 616
        assert result.arith_flops_per_point == 218
        assert result.block_count == 512


class TestModelTracksPaper:
    """The frozen model must stay within band of every published cell."""

    @pytest.fixture(scope="class")
    def setup(self):
        return mpdata_program(), sgi_uv2000(), uv2000_costs()

    def test_original_first_touch_row(self, setup):
        program, machine, costs = setup
        for p in range(1, 15):
            t = simulate(
                build_original_plan(
                    program, paperdata.GRID_SHAPE, paperdata.TIME_STEPS,
                    p, machine, costs,
                )
            ).total_seconds
            assert t == pytest.approx(paperdata.TABLE3_ORIGINAL[p - 1], rel=0.06)

    def test_original_serial_row(self, setup):
        program, machine, costs = setup
        for p in range(1, 15):
            t = simulate(
                build_original_plan(
                    program, paperdata.GRID_SHAPE, paperdata.TIME_STEPS,
                    p, machine, costs, placement="serial",
                )
            ).total_seconds
            assert t == pytest.approx(
                paperdata.TABLE1_ORIGINAL_SERIAL_INIT[p - 1], rel=0.06
            )

    def test_fused_row(self, setup):
        program, machine, costs = setup
        for p in range(1, 15):
            t = simulate(
                build_fused_plan(
                    program, paperdata.GRID_SHAPE, paperdata.TIME_STEPS,
                    p, machine, costs,
                )
            ).total_seconds
            # The paper's fused row is non-monotonic; a mechanistic model
            # tracks it within ~15 %.
            assert t == pytest.approx(paperdata.TABLE3_FUSED[p - 1], rel=0.15)

    def test_islands_row(self, setup):
        program, machine, costs = setup
        for p in range(1, 15):
            t = simulate(
                build_islands_plan(
                    program, paperdata.GRID_SHAPE, paperdata.TIME_STEPS,
                    p, machine, costs,
                )
            ).total_seconds
            assert t == pytest.approx(paperdata.TABLE3_ISLANDS[p - 1], rel=0.10)

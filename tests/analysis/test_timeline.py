"""Tests for the timeline/attribution report."""

import pytest

from repro.analysis import timeline_report
from repro.machine import simulate, sgi_uv2000, uv2000_costs
from repro.mpdata import mpdata_program
from repro.sched import build_fused_plan, build_islands_plan, build_original_plan

SHAPE = (1024, 512, 64)


@pytest.fixture(scope="module")
def env():
    return mpdata_program(), sgi_uv2000(), uv2000_costs()


class TestTimelineReport:
    def test_shares_sum_to_one(self, env):
        program, machine, costs = env
        result = simulate(
            build_original_plan(program, SHAPE, 50, 4, machine, costs)
        )
        report = timeline_report(result)
        assert sum(row.share for row in report.rows) == pytest.approx(1.0)
        assert sum(s for _, s, _ in report.attribution) == pytest.approx(
            result.total_seconds
        )

    def test_rows_sorted_descending(self, env):
        program, machine, costs = env
        result = simulate(
            build_original_plan(program, SHAPE, 50, 4, machine, costs)
        )
        totals = [row.total_seconds for row in timeline_report(result).rows]
        assert totals == sorted(totals, reverse=True)

    def test_fused_at_scale_is_overhead_dominated(self, env):
        """The paper's diagnosis: pure (3+1)D at P = 14 drowns in per-block
        hand-offs, not in computation."""
        program, machine, costs = env
        result = simulate(
            build_fused_plan(program, SHAPE, 50, 14, machine, costs)
        )
        assert timeline_report(result).dominant_bucket() == "overhead"

    def test_islands_at_scale_is_compute_dominated(self, env):
        """...while islands put the machine back to work."""
        program, machine, costs = env
        result = simulate(
            build_islands_plan(program, SHAPE, 50, 14, machine, costs)
        )
        report = timeline_report(result)
        assert report.dominant_bucket() == "compute"
        shares = dict(
            (bucket, share) for bucket, _, share in report.attribution
        )
        assert shares["compute"] > 0.7

    def test_original_is_stream_bound_compute_bucket(self, env):
        program, machine, costs = env
        result = simulate(
            build_original_plan(program, SHAPE, 50, 14, machine, costs)
        )
        # Stream sweeps land in the "compute" (busy-node) bucket.
        assert timeline_report(result).dominant_bucket() == "compute"

    def test_render_contains_bars(self, env):
        program, machine, costs = env
        result = simulate(
            build_fused_plan(program, SHAPE, 50, 8, machine, costs)
        )
        text = timeline_report(result).render()
        assert "timeline:" in text
        assert "#" in text
        assert "attribution:" in text

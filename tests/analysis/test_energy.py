"""Tests for the first-order energy model."""

import pytest

from repro.analysis import EnergyModel, estimate_energy
from repro.machine import simulate, sgi_uv2000, uv2000_costs
from repro.mpdata import mpdata_program
from repro.sched import build_fused_plan, build_islands_plan, build_original_plan

SHAPE = (1024, 512, 64)
STEPS = 50


@pytest.fixture(scope="module")
def env():
    return mpdata_program(), sgi_uv2000(), uv2000_costs()


class TestEnergyModel:
    def test_constant_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(active_watts=50.0, idle_watts=65.0)
        with pytest.raises(ValueError):
            EnergyModel(joules_per_byte=-1.0)

    def test_arithmetic(self, env):
        program, machine, costs = env
        result = simulate(
            build_islands_plan(program, SHAPE, STEPS, 14, machine, costs)
        )
        model = EnergyModel(active_watts=100.0, idle_watts=50.0)
        estimate = estimate_energy(result, total_nodes=14, model=model)
        assert estimate.idle_joules == 0.0  # all 14 nodes busy
        assert estimate.busy_joules == pytest.approx(
            100.0 * result.total_seconds * 14
        )
        assert "kJ" in str(estimate)

    def test_nodes_used_validated(self, env):
        program, machine, costs = env
        result = simulate(
            build_islands_plan(program, SHAPE, STEPS, 14, machine, costs)
        )
        with pytest.raises(ValueError):
            estimate_energy(result, total_nodes=8)


class TestStrategyEnergy:
    def test_islands_cheapest_at_full_machine(self, env):
        """Energy tracks time when all nodes are powered: the islands
        speedup is also an energy win."""
        program, machine, costs = env
        energies = {}
        for name, build in (
            ("original", build_original_plan),
            ("fused", build_fused_plan),
            ("islands", build_islands_plan),
        ):
            result = simulate(build(program, SHAPE, STEPS, 14, machine, costs))
            energies[name] = estimate_energy(result, 14).total_joules
        assert energies["islands"] < energies["original"] < energies["fused"]

    def test_idle_nodes_penalize_small_runs(self, env):
        """Running P=2 on a powered 14-node machine burns idle energy: the
        energy-optimal processor count is larger than the time-optimal
        reading would suggest."""
        program, machine, costs = env
        two = estimate_energy(
            simulate(build_islands_plan(program, SHAPE, STEPS, 2, machine, costs)),
            total_nodes=14,
        )
        fourteen = estimate_energy(
            simulate(build_islands_plan(program, SHAPE, STEPS, 14, machine, costs)),
            total_nodes=14,
        )
        assert fourteen.total_joules < two.total_joules
        assert two.idle_joules > 0.0

"""Tests for machine topology and presets."""

import pytest

from repro.machine import (
    INTRA_BLADE_BANDWIDTH,
    Link,
    MachineSpec,
    NUMALINK6_BANDWIDTH,
    blade_machine,
    sgi_uv2000,
    uniform_smp,
    xeon_e5_2660v2,
    xeon_e5_4627v2,
)


class TestNodeSpec:
    def test_uv2000_node_peak_matches_paper(self):
        # 8 cores x 3.3 GHz x 4 DP flops = 105.6 Gflop/s (Table 4).
        assert xeon_e5_4627v2().peak_flops == pytest.approx(105.6e9)

    def test_e5_2660v2_l3(self):
        assert xeon_e5_2660v2().l3_bytes == 25 * 1024 * 1024


class TestUv2000:
    @pytest.fixture(scope="class")
    def machine(self):
        return sgi_uv2000()

    def test_fourteen_nodes_112_cores(self, machine):
        assert machine.node_count == 14
        assert machine.total_cores == 112

    def test_peak_flops_row(self, machine):
        # Table 4's theoretical-performance row.
        assert machine.peak_flops(1) == pytest.approx(105.6e9)
        assert machine.peak_flops(14) == pytest.approx(1478.4e9)
        with pytest.raises(ValueError):
            machine.peak_flops(15)

    def test_blade_mates_use_fast_link(self, machine):
        assert machine.path_bandwidth(0, 1) == INTRA_BLADE_BANDWIDTH

    def test_cross_blade_bottleneck_is_numalink(self, machine):
        assert machine.path_bandwidth(0, 2) == NUMALINK6_BANDWIDTH
        assert machine.path_bandwidth(1, 3) == NUMALINK6_BANDWIDTH

    def test_route_between_odd_nodes_crosses_three_links(self, machine):
        # odd -> its even hub -> other blade's hub -> odd
        assert len(machine.route(1, 3)) == 3
        assert len(machine.route(0, 2)) == 1
        assert machine.route(5, 5) == []

    def test_distance_matrix_symmetric(self, machine):
        matrix = machine.distance_matrix()
        for a in range(14):
            assert matrix[a][a] == 0.0
            for b in range(14):
                assert matrix[a][b] == pytest.approx(matrix[b][a])

    def test_blade_mates_closer_than_cross_blade(self, machine):
        matrix = machine.distance_matrix()
        assert matrix[0][1] < matrix[0][2] < matrix[1][3]


class TestValidation:
    def test_disconnected_graph_rejected(self):
        node = xeon_e5_4627v2()
        with pytest.raises(ValueError, match="not connected"):
            MachineSpec("bad", node, 3, (Link(0, 1, 1e9, 1e-6),))

    def test_link_endpoint_out_of_range(self):
        node = xeon_e5_4627v2()
        with pytest.raises(ValueError, match="out of range"):
            MachineSpec("bad", node, 2, (Link(0, 5, 1e9, 1e-6),))

    def test_link_other(self):
        link = Link(2, 5, 1e9, 1e-6)
        assert link.other(2) == 5
        assert link.other(5) == 2
        with pytest.raises(ValueError):
            link.other(3)

    def test_blade_machine_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            blade_machine(0, xeon_e5_4627v2())


class TestUniformSmp:
    def test_single_node_has_no_links(self):
        machine = uniform_smp(1, xeon_e5_4627v2())
        assert machine.links == ()

    def test_all_pairs_one_hop(self):
        machine = uniform_smp(4, xeon_e5_4627v2(), bandwidth=10e9)
        for a in range(4):
            for b in range(a + 1, 4):
                assert len(machine.route(a, b)) == 1
                assert machine.path_bandwidth(a, b) == 10e9

"""Tests for the page-placement model."""

import pytest

from repro.machine import (
    AccessMatrix,
    first_touch_matrix,
    interleaved_matrix,
    serial_matrix,
    sgi_uv2000,
    sweep_phase,
    uv2000_costs,
)
from repro.machine.simulator import ExecutionPlan, simulate


@pytest.fixture(scope="module")
def machine():
    return sgi_uv2000()


@pytest.fixture(scope="module")
def costs():
    return uv2000_costs()


class TestAccessMatrix:
    def test_first_touch_identity(self):
        matrix = first_touch_matrix(3)
        assert matrix.fractions[1] == (0.0, 1.0, 0.0)
        assert matrix.owner_load(1) == 1.0
        assert matrix.remote_accessors_of(1) == 0

    def test_serial_everything_on_node0(self):
        matrix = serial_matrix(4)
        assert matrix.owner_load(0) == 4.0
        assert matrix.owner_load(1) == 0.0
        assert matrix.remote_accessors_of(0) == 3

    def test_interleaved_uniform(self):
        matrix = interleaved_matrix(4)
        assert matrix.owner_load(2) == pytest.approx(1.0)
        assert matrix.remote_accessors_of(2) == 3

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            AccessMatrix(((0.5, 0.4), (0.5, 0.5)))

    def test_must_be_square(self):
        with pytest.raises(ValueError, match="square"):
            AccessMatrix(((1.0,), (0.0, 1.0)))


class TestSweepPhase:
    def _seconds(self, phase, machine, costs, nodes):
        plan = ExecutionPlan("t", machine, costs, (phase,), nodes_used=nodes)
        return simulate(plan).total_seconds

    def test_first_touch_uses_full_stream_bandwidth(self, machine, costs):
        total = costs.stream_bandwidth * 4  # one second per node at P=4
        phase = sweep_phase("s", total, first_touch_matrix(4), machine, costs)
        assert max(phase.node_seconds.values()) == pytest.approx(1.0)

    def test_serial_matches_pool_model(self, machine, costs):
        total = 1e10
        phase = sweep_phase("s", total, serial_matrix(8), machine, costs)
        assert phase.node_seconds[0] == pytest.approx(
            costs.pool_seconds(total, 8)
        )
        assert 1 not in phase.node_seconds  # other controllers idle

    def test_interleaved_between_extremes(self, machine, costs):
        total = 1e11
        nodes = 8
        ft = self._seconds(
            sweep_phase("s", total, first_touch_matrix(nodes), machine, costs),
            machine, costs, nodes,
        )
        inter = self._seconds(
            sweep_phase("s", total, interleaved_matrix(nodes), machine, costs),
            machine, costs, nodes,
        )
        serial = self._seconds(
            sweep_phase("s", total, serial_matrix(nodes), machine, costs),
            machine, costs, nodes,
        )
        assert ft < inter < serial

    def test_matrix_must_fit_machine(self, machine, costs):
        with pytest.raises(ValueError, match="machine has"):
            sweep_phase("s", 1e9, serial_matrix(20), machine, costs)


class TestPlacementAblation:
    def test_ordering_at_every_p(self):
        from repro.experiments.ablations import run_placement_ablation
        from repro.experiments import ExperimentSetup

        result = run_placement_ablation(
            ExperimentSetup.paper(processors=(2, 8, 14))
        )
        for ft, inter, serial in zip(
            result.first_touch_seconds,
            result.interleaved_seconds,
            result.serial_seconds,
        ):
            assert ft < inter < serial
        assert "page-placement" in result.render()

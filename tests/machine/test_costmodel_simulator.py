"""Tests for the cost-model regimes and the phase simulator."""

import pytest

from repro.machine import (
    ExecutionPlan,
    Phase,
    Transfer,
    simulate,
    sgi_uv2000,
    transfer_seconds,
    uv2000_costs,
)


@pytest.fixture(scope="module")
def machine():
    return sgi_uv2000()


@pytest.fixture(scope="module")
def costs():
    return uv2000_costs()


class TestCostModel:
    def test_stream_seconds(self, costs):
        assert costs.stream_seconds(costs.stream_bandwidth) == pytest.approx(1.0)

    def test_pool_bandwidth_decays_to_floor(self, costs):
        assert costs.pool_bandwidth(1) == pytest.approx(costs.stream_bandwidth)
        assert costs.pool_bandwidth(10**6) == pytest.approx(
            costs.remote_pool_floor, rel=1e-3
        )
        assert costs.pool_bandwidth(2) < costs.pool_bandwidth(1)

    def test_cached_seconds_regimes(self, costs):
        flops = 1e9
        assert costs.cached_seconds(flops) < costs.cached_seconds(
            flops, team=True
        )

    def test_barrier_grows_logarithmically(self, costs):
        assert costs.barrier_seconds(1) == 0.0
        assert costs.barrier_seconds(4) == pytest.approx(
            2 * costs.barrier_seconds(2)
        )

    def test_island_step_zero_for_one_node(self, costs):
        assert costs.island_step_seconds(1) == 0.0
        assert costs.island_step_seconds(2) > 0.0

    def test_block_overhead_zero_for_one_node(self, costs):
        assert costs.block_stage_overhead(1, 6.7e9) == 0.0
        assert costs.block_stage_overhead(4, 6.7e9) > costs.block_stage_overhead(
            2, 6.7e9
        )


class TestTransferSeconds:
    def test_no_transfers(self, machine):
        assert transfer_seconds(machine, []) == 0.0

    def test_self_transfer_free(self, machine):
        assert transfer_seconds(machine, [Transfer(3, 3, 1e9)]) == 0.0

    def test_single_link_time(self, machine):
        seconds = transfer_seconds(machine, [Transfer(0, 1, 25.6e9)])
        assert seconds == pytest.approx(1.0, rel=1e-3)

    def test_shared_link_contention_adds(self, machine):
        """Two transfers over the same directed link serialize."""
        one = transfer_seconds(machine, [Transfer(0, 2, 6.7e9)])
        two = transfer_seconds(
            machine, [Transfer(0, 2, 6.7e9), Transfer(0, 2, 6.7e9)]
        )
        assert two == pytest.approx(2 * one, rel=1e-3)

    def test_opposite_directions_do_not_contend(self, machine):
        """NUMAlink bandwidth is per direction."""
        forward = transfer_seconds(machine, [Transfer(0, 2, 6.7e9)])
        both = transfer_seconds(
            machine, [Transfer(0, 2, 6.7e9), Transfer(2, 0, 6.7e9)]
        )
        assert both == pytest.approx(forward, rel=1e-3)

    def test_disjoint_links_parallel(self, machine):
        one = transfer_seconds(machine, [Transfer(0, 1, 25.6e9)])
        both = transfer_seconds(
            machine, [Transfer(0, 1, 25.6e9), Transfer(2, 3, 25.6e9)]
        )
        assert both == pytest.approx(one, rel=1e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Transfer(0, 1, -5.0)


class TestSimulate:
    def test_phase_takes_busiest_node(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 1.0, 1: 3.0}),),
            nodes_used=2,
        )
        result = simulate(plan)
        assert result.total_seconds == pytest.approx(
            3.0, abs=costs.barrier_seconds(2)
        )

    def test_compute_and_transfer_overlap(self, machine, costs):
        slow_transfer = (Transfer(0, 2, 6.7e9 * 10),)
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 1.0}, transfers=slow_transfer),),
            nodes_used=2,
        )
        result = simulate(plan)
        assert result.total_seconds == pytest.approx(10.0, rel=1e-3)

    def test_repeat_multiplies(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 0.5}, repeat=4),),
            nodes_used=1,
        )
        assert simulate(plan).total_seconds == pytest.approx(2.0)

    def test_extra_seconds_added(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 1.0}, extra_seconds=0.25),),
            nodes_used=1,
        )
        assert simulate(plan).total_seconds == pytest.approx(1.25)

    def test_barrier_charged_per_phase(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 1.0}, barrier_nodes=8, repeat=10),),
            nodes_used=8,
        )
        expected = 10 * (1.0 + costs.barrier_seconds(8))
        assert simulate(plan).total_seconds == pytest.approx(expected)

    def test_gflops(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 2.0}),),
            nodes_used=1,
            total_flops=4e9,
        )
        assert simulate(plan).gflops == pytest.approx(2.0)

    def test_breakdown_buckets(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (
                Phase("a", {0: 1.0}, barrier_nodes=4, extra_seconds=0.5),
                Phase("b", {0: 0.1}, transfers=(Transfer(0, 2, 6.7e9),)),
            ),
            nodes_used=4,
        )
        breakdown = simulate(plan).breakdown()
        assert breakdown["compute"] == pytest.approx(1.0)
        assert breakdown["transfer"] == pytest.approx(1.0, rel=1e-3)
        assert breakdown["overhead"] == pytest.approx(0.5)
        assert breakdown["barrier"] > 0.0

    def test_nodes_used_validated(self, machine, costs):
        with pytest.raises(ValueError):
            ExecutionPlan("t", machine, costs, (), nodes_used=20)


class TestNodeStats:
    def test_busy_seconds_accumulate_with_repeat(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 1.0, 1: 0.5}, repeat=3),),
            nodes_used=2,
        )
        busy = simulate(plan).node_busy_seconds()
        assert busy[0] == pytest.approx(3.0)
        assert busy[1] == pytest.approx(1.5)

    def test_utilization_bounded_by_one(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 1.0, 1: 0.25}, barrier_nodes=2),),
            nodes_used=2,
        )
        utilization = simulate(plan).node_utilization()
        assert 0.99 < utilization[0] <= 1.0
        assert utilization[1] < 0.3

    def test_load_imbalance(self, machine, costs):
        plan = ExecutionPlan(
            "t", machine, costs,
            (Phase("p", {0: 3.0, 1: 1.0}),),
            nodes_used=2,
        )
        assert simulate(plan).load_imbalance() == pytest.approx(1.5)

    def test_islands_nearly_balanced(self, machine, costs):
        from repro.mpdata import mpdata_program
        from repro.sched import build_islands_plan

        result = simulate(
            build_islands_plan(
                mpdata_program(), (1024, 512, 64), 50, 14, machine, costs
            )
        )
        # Interior islands recompute halos on both sides, edge islands on
        # one: a real ~1.3 % imbalance the accounting should expose.
        assert 1.005 < result.load_imbalance() < 1.05

"""Validation of the IR-derived per-stage cost estimates.

The pure-model tests pin the :class:`~repro.machine.PortModel` accounting
(op counts x port cycles, traffic from reads + spilled slots) and the
hand-rolled rank statistics.  The measured test compiles the MPDATA plan
with the native backend and checks that the model's predicted per-stage
ranking matches the measured ranking of the fused C kernels — the
acceptance gate for the instruction-level extension.
"""

import pytest

from repro.machine import (
    OP_PORT_CYCLES,
    PortModel,
    default_port_model,
    kernel_estimates,
    rank_order,
    spearman_rank_correlation,
)
from repro.mpdata import MpdataSolver, mpdata_program, random_state
from repro.stencil import (
    Access,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    compile_plan_native,
    lower_plan,
    native_available,
    required_regions,
    sqrt,
)
from repro.stencil.lowering import StageSchedule


def _single_stage_program(expr_builder):
    """A one-stage program ``y = f(x)`` for pricing isolated op mixes."""
    x = Access("x")
    return StencilProgram.build(
        "probe",
        inputs=(Field("x", FieldRole.INPUT),),
        stages=(Stage("probe", "y", expr_builder(x)),),
        outputs=("y",),
    )


def _lowered(program, shape=(8, 6, 4)):
    plan = required_regions(program, Box((0, 0, 0), shape))
    return lower_plan(program, plan)


class TestRankStatistics:
    def test_rank_order_simple(self):
        assert rank_order([3.0, 1.0, 2.0]) == (3.0, 1.0, 2.0)

    def test_rank_order_ties_average(self):
        assert rank_order([1.0, 2.0, 2.0, 5.0]) == (1.0, 2.5, 2.5, 4.0)

    def test_spearman_perfect(self):
        assert spearman_rank_correlation(
            [1.0, 2.0, 3.0], [10.0, 20.0, 30.0]
        ) == pytest.approx(1.0)

    def test_spearman_inverse(self):
        assert spearman_rank_correlation(
            [1.0, 2.0, 3.0], [30.0, 20.0, 10.0]
        ) == pytest.approx(-1.0)

    def test_spearman_rejects_constant(self):
        with pytest.raises(ValueError, match="constant"):
            spearman_rank_correlation([1.0, 1.0], [1.0, 2.0])

    def test_spearman_rejects_mismatched(self):
        with pytest.raises(ValueError, match="pair"):
            spearman_rank_correlation([1.0, 2.0], [1.0, 2.0, 3.0])


class TestPortModelAccounting:
    def test_divider_ops_cost_more_than_adders(self):
        cheap = _lowered(_single_stage_program(lambda x: x + x))
        dear = _lowered(_single_stage_program(lambda x: sqrt(x) / x))
        ports = default_port_model()
        cheap_est = ports.estimate(cheap.stages[0])
        dear_est = ports.estimate(dear.stages[0])
        assert cheap_est.points == dear_est.points
        assert dear_est.cycles_per_point > cheap_est.cycles_per_point
        assert dear_est.seconds > cheap_est.seconds

    def test_cycles_match_histogram(self):
        ir = _lowered(_single_stage_program(lambda x: (x + x) * x - x))
        schedule = ir.stages[0]
        expected = sum(
            count * OP_PORT_CYCLES[op]
            for op, count in schedule.op_histogram().items()
        )
        assert default_port_model().stage_cycles(schedule) == expected

    def test_traffic_counts_distinct_reads_plus_store(self):
        # x appears twice but streams once; + the output store.
        ir = _lowered(_single_stage_program(lambda x: x + x))
        assert default_port_model().stage_bytes(ir.stages[0]) == 2 * 8
        assert default_port_model().stage_bytes(ir.stages[0], 4) == 2 * 4

    def test_slot_pressure_past_budget_spills(self):
        def schedule_with_peak(peak):
            return StageSchedule(
                index=0,
                name="synthetic",
                output="y",
                box=Box((0, 0, 0), (4, 4, 4)),
                views=(),
                ops=(),
                float_slots=tuple(range(peak)),
                mask_slots=(),
                peak_float_slots=peak,
                peak_mask_slots=0,
            )

        ports = PortModel(register_budget=16)
        inside = ports.stage_bytes(schedule_with_peak(16))
        spilled = ports.stage_bytes(schedule_with_peak(20))
        # 4 excess live slots -> one store + one reload each, 8 B/point.
        assert spilled - inside == 4 * 2 * 8

    def test_unknown_opcode_rejected(self):
        ir = _lowered(_single_stage_program(lambda x: x * x))
        ports = PortModel(op_cycles={"add": 1.0})
        with pytest.raises(ValueError, match="mul"):
            ports.stage_cycles(ir.stages[0])

    def test_estimate_is_roofline_max(self):
        ir = _lowered(_single_stage_program(lambda x: x + x))
        compute_bound = PortModel(cycle_rate=1.0, stream_bandwidth=1e30)
        traffic_bound = PortModel(cycle_rate=1e30, stream_bandwidth=1.0)
        c = compute_bound.estimate(ir.stages[0])
        t = traffic_bound.estimate(ir.stages[0])
        assert c.seconds == pytest.approx(c.compute_seconds)
        assert t.seconds == pytest.approx(t.traffic_seconds)
        assert c.seconds_per_point == pytest.approx(
            c.seconds / ir.stages[0].points
        )

    def test_kernel_estimates_cover_every_mpdata_stage(self):
        program = mpdata_program()
        solver = MpdataSolver((16, 12, 8))
        plan = required_regions(
            program, solver.domain, domain=solver.extended_domain
        )
        ir = lower_plan(program, plan)
        estimates = kernel_estimates(ir)
        assert len(estimates) == len(ir.stages) == len(program.stages)
        assert [e.name for e in estimates] == [s.name for s in ir.stages]
        assert all(e.seconds > 0.0 for e in estimates)


@pytest.mark.skipif(
    not native_available(), reason="needs cffi and a system C compiler"
)
class TestNativeRankValidation:
    def test_predicted_ranking_matches_measured_native_ranking(self):
        """The acceptance gate: the IR-derived estimates must rank the
        MPDATA stages the way the fused native kernels actually rank.

        Rank correlation (not absolute error) because the PortModel is
        calibrated only in ratios; Spearman's rho >= 0.5 over 17 stages
        is far outside chance (p < 0.02) yet tolerant of timer jitter on
        the cheapest kernels.
        """
        shape = (48, 40, 24)
        program = mpdata_program()
        solver = MpdataSolver(shape)
        state = random_state(shape, seed=11)
        inputs = solver.prepare_inputs(state)
        plan = required_regions(
            program, solver.domain, domain=solver.extended_domain
        )
        compiled = compile_plan_native(
            program, plan, reuse_buffers=True, timed=True
        )
        for _ in range(3):  # warm-up: page faults, branch history
            compiled(inputs)
        before = dict(compiled.stage_seconds)
        for _ in range(10):
            compiled(inputs)
        after = compiled.stage_seconds
        measured = {name: after[name] - before.get(name, 0.0) for name in after}

        estimates = kernel_estimates(lower_plan(program, plan))
        names = [e.name for e in estimates]
        assert set(names) == set(measured)
        rho = spearman_rank_correlation(
            [e.seconds for e in estimates],
            [measured[name] for name in names],
        )
        assert rho >= 0.5, (
            f"predicted/measured Spearman rho {rho:.3f} < 0.5:\n"
            + "\n".join(
                f"  {name}: predicted {e.seconds:.3e}s measured "
                f"{measured[name]:.3e}s"
                for name, e in zip(names, estimates)
            )
        )


"""Tests for extra-element accounting (the Table 2 machinery)."""

import pytest

from repro.core import (
    Variant,
    partition_domain,
    redundancy_report,
    variant_table,
)
from repro.stencil import full_box


class TestChainExactness:
    """On the 3-stage chain the redundancy is small enough to verify by
    hand: each interior cut costs (1+2) rows on each side = 6 rows of the
    cross-section, minus clipping at the physical edges (none for interior
    cuts)."""

    def test_two_islands(self, chain_program):
        domain = full_box((20, 4, 4))
        partition = partition_domain(domain, 2, Variant.A)
        report = redundancy_report(chain_program, partition)
        # Left island: s2 needs +1 row above, s1 +2 rows; clipped below at
        # 0 by the domain edge only for the left edge (no cut there).
        # Right island symmetric. Total = (1+2) * 2 sides * 16 points/row.
        assert report.extra_points == 6 * 16

    def test_one_island_has_zero_extra(self, chain_program):
        domain = full_box((20, 4, 4))
        partition = partition_domain(domain, 1, Variant.A)
        report = redundancy_report(chain_program, partition)
        assert report.extra_points == 0
        assert report.extra_percent == 0.0

    def test_linear_in_cuts(self, chain_program):
        domain = full_box((40, 4, 4))
        per_cut = None
        for islands in (2, 3, 4, 5):
            partition = partition_domain(domain, islands, Variant.A)
            extra = redundancy_report(chain_program, partition).extra_points
            cuts = islands - 1
            if per_cut is None:
                per_cut = extra / cuts
            assert extra == per_cut * cuts

    def test_own_points_account_whole_domain(self, chain_program):
        domain = full_box((24, 4, 4))
        partition = partition_domain(domain, 3, Variant.A)
        report = redundancy_report(chain_program, partition)
        own_total = sum(island.own_points for island in report.islands)
        assert own_total == report.baseline_points

    def test_imbalance_is_mild(self, chain_program):
        domain = full_box((24, 4, 4))
        partition = partition_domain(domain, 3, Variant.A)
        report = redundancy_report(chain_program, partition)
        assert 1.0 <= report.imbalance() < 1.1


class TestMpdataTable2:
    @pytest.fixture(scope="class")
    def table(self, mpdata):
        # A smaller domain with the paper's 2:1 i:j aspect keeps this fast;
        # percentages scale with 1/extent of the split axis.
        return variant_table(mpdata, full_box((256, 128, 16)), 8)

    def test_zero_at_one_island(self, table):
        assert table[Variant.A][0] == 0.0
        assert table[Variant.B][0] == 0.0

    def test_monotone_increasing(self, table):
        for variant in (Variant.A, Variant.B):
            values = table[variant]
            assert all(a < b for a, b in zip(values, values[1:]))

    def test_variant_b_exactly_doubles_a(self, table):
        """With i = 2j and symmetric stencils, each j-cut costs exactly
        twice what an i-cut does — the ratio the paper's Table 2 shows."""
        for a, b in zip(table[Variant.A][1:], table[Variant.B][1:]):
            assert b == pytest.approx(2.0 * a, rel=1e-12)

    def test_linear_per_cut(self, table):
        values = table[Variant.A]
        increments = [b - a for a, b in zip(values, values[1:])]
        for inc in increments[1:]:
            assert inc == pytest.approx(increments[0], rel=1e-9)

    def test_paper_domain_magnitude(self, mpdata, paper_domain):
        """On the true paper domain, variant A costs ~0.21 %/cut (the paper
        measures 0.247 %/cut with its slightly deeper stage split)."""
        partition = partition_domain(paper_domain, 2, Variant.A)
        report = redundancy_report(mpdata, partition)
        assert 0.15 < report.extra_percent < 0.30

"""Tests for island decomposition, affinity placement and the trade-off
model."""

import pytest

from repro.core import (
    Variant,
    chain_placement,
    crossover_bandwidth,
    decompose,
    identity_placement,
    partition_domain,
    placement_cost,
    scenario_costs,
)
from repro.machine import sgi_uv2000
from repro.stencil import full_box


class TestDecompose:
    def test_islands_cover_domain(self, mpdata):
        domain = full_box((64, 32, 16))
        decomposition = decompose(mpdata, domain, 4)
        decomposition.partition.validate()
        assert decomposition.count == 4

    def test_extra_points_match_redundancy_report(self, mpdata):
        domain = full_box((64, 32, 16))
        decomposition = decompose(mpdata, domain, 4)
        report = decomposition.redundancy()
        assert sum(i.extra_points for i in decomposition.islands) == (
            report.extra_points
        )

    def test_input_boxes_cover_part_plus_halo(self, mpdata):
        domain = full_box((64, 32, 16))
        decomposition = decompose(mpdata, domain, 2)
        island = decomposition.islands[0]
        x_box = island.input_boxes["x"]
        assert x_box.contains(island.part)
        # The halo reaches into the neighbour's slab.
        assert x_box.hi[0] > island.part.hi[0]

    def test_clip_domain_bounds_the_halo(self, mpdata):
        domain = full_box((64, 32, 16))
        decomposition = decompose(mpdata, domain, 2, clip_domain=domain)
        for island in decomposition.islands:
            for box in island.input_boxes.values():
                assert domain.contains(box)

    def test_block_plans_when_cache_given(self, mpdata):
        domain = full_box((64, 32, 16))
        decomposition = decompose(
            mpdata, domain, 2, cache_bytes=2 * 1024 * 1024
        )
        for island in decomposition.islands:
            assert island.blocks is not None
            island.blocks.validate_partition()

    def test_explicit_partition_must_match_domain(self, mpdata):
        domain = full_box((64, 32, 16))
        other = partition_domain(full_box((32, 32, 16)), 2)
        with pytest.raises(ValueError, match="does not cover"):
            decompose(mpdata, domain, 2, partition=other)

    def test_max_compute_points(self, mpdata):
        domain = full_box((64, 32, 16))
        decomposition = decompose(mpdata, domain, 4)
        assert decomposition.max_compute_points() == max(
            i.compute_points for i in decomposition.islands
        )


class TestAffinity:
    def test_identity(self):
        assert identity_placement(4) == [0, 1, 2, 3]

    def test_placement_cost_sums_consecutive_distances(self):
        distances = [[0, 1, 5], [1, 0, 2], [5, 2, 0]]
        assert placement_cost(distances, [0, 1, 2]) == 3
        assert placement_cost(distances, [0, 2, 1]) == 7

    def test_chain_placement_prefers_short_hops(self):
        # Three nodes on a line: 0 -1- 1 -1- 2; distance 0<->2 is 2.
        distances = [[0, 1, 2], [1, 0, 1], [2, 1, 0]]
        placement = chain_placement(distances, 3)
        assert placement_cost(distances, placement) == 2

    def test_uv2000_placement_keeps_blade_pairs_together(self):
        machine = sgi_uv2000()
        distances = machine.distance_matrix()
        placement = chain_placement(distances, 14)
        assert sorted(placement) == list(range(14))
        # Blade mates (2b, 2b+1) must be adjacent in the chain.
        for blade in range(7):
            a = placement.index(2 * blade)
            b = placement.index(2 * blade + 1)
            assert abs(a - b) == 1

    def test_too_many_islands_rejected(self):
        with pytest.raises(ValueError):
            chain_placement([[0]], 2)

    def test_single_island(self):
        assert chain_placement([[0, 1], [1, 0]], 1) == [0]


class TestTradeoff:
    @pytest.fixture()
    def partition(self, mpdata):
        return partition_domain(full_box((128, 64, 16)), 4)

    def test_transfer_equals_recompute_bytes(self, mpdata, partition):
        """The paper's core identity: what scenario 1 communicates is what
        scenario 2 recomputes."""
        costs = scenario_costs(
            mpdata, partition,
            seconds_per_point=1e-9, link_bandwidth=6.7e9, sync_latency=1e-4,
        )
        assert costs.transfer_bytes == costs.extra_points * 8
        assert costs.sync_points == 17

    def test_slow_link_favours_recompute(self, mpdata, partition):
        slow = scenario_costs(mpdata, partition, 1e-9, 1e8, 1e-4)
        assert slow.recompute_wins

    def test_fast_link_favours_communicate(self, mpdata, partition):
        fast = scenario_costs(mpdata, partition, 1e-9, 1e13, 1e-7)
        assert not fast.recompute_wins

    def test_crossover_separates_regimes(self, mpdata, partition):
        crossover = crossover_bandwidth(
            mpdata, partition, seconds_per_point=1e-9, sync_latency=1e-7
        )
        below = scenario_costs(mpdata, partition, 1e-9, crossover / 2, 1e-7)
        above = scenario_costs(mpdata, partition, 1e-9, crossover * 2, 1e-7)
        assert below.recompute_wins
        assert not above.recompute_wins

    def test_crossover_infinite_when_latency_dominates(self, mpdata, partition):
        # With enormous per-stage sync latency, communication can never win.
        crossover = crossover_bandwidth(
            mpdata, partition, seconds_per_point=1e-12, sync_latency=10.0
        )
        assert crossover == float("inf")

    def test_invalid_constants_rejected(self, mpdata, partition):
        with pytest.raises(ValueError):
            scenario_costs(mpdata, partition, -1.0, 1e9, 1e-4)

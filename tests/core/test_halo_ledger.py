"""The shared backward-halo analysis and the halo-policy ledger.

``core.halo`` is the single source of halo geometry: the decomposition
core, the redundancy accounting, the analytic exchange plan and the
runtime backends all consume :func:`island_halo_plans` /
:func:`build_halo_ledger`.  These tests pin the dedupe (the shared
function reproduces what the former private copies computed), the
geometric invariants every policy must satisfy, and the paper's
computation/communication identity: the points scenario 1 ships are
exactly the points scenario 2 recomputes.
"""

from __future__ import annotations

import pytest

from repro.core import (
    HALO_POLICIES,
    Variant,
    build_halo_ledger,
    decompose,
    island_halo_plans,
    partition_domain,
    partition_grid_2d,
    redundancy_report,
)
from repro.mpdata import mpdata_program
from repro.stencil import Box, full_box, required_regions

DOMAIN = full_box((24, 16, 8))


def _partitions():
    return [
        partition_domain(DOMAIN, 3, Variant.A),
        partition_domain(DOMAIN, 4, Variant.B),
        partition_grid_2d(DOMAIN, 2, 2),
    ]


class TestSharedAnalysis:
    """Satellite: one backward-halo walk, shared by every consumer."""

    @pytest.mark.parametrize("partition", _partitions(), ids=("A3", "B4", "2x2"))
    def test_matches_per_part_required_regions(self, partition):
        program = mpdata_program()
        plans = island_halo_plans(program, partition)
        assert len(plans) == partition.count
        for part, plan in zip(partition.parts, plans):
            expected = required_regions(program, part, domain=DOMAIN)
            assert plan.target == expected.target
            assert plan.stage_boxes == expected.stage_boxes
            assert plan.input_boxes == expected.input_boxes

    def test_clip_domain_is_honoured(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        clip = Box((-3, -3, -3), (27, 19, 11))
        for part, plan in zip(
            partition.parts, island_halo_plans(program, partition, clip)
        ):
            expected = required_regions(program, part, domain=clip)
            assert plan.stage_boxes == expected.stage_boxes

    def test_redundancy_report_totals_still_match_plans(self):
        """The report (now a consumer of the shared analysis) is unchanged:
        every island's total equals its backward plan's compute total."""
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        report = redundancy_report(program, partition)
        for island, plan in zip(
            report.islands, island_halo_plans(program, partition)
        ):
            assert island.total_points == plan.compute_points()

    def test_decomposition_ledger_delegates(self):
        program = mpdata_program()
        deco = decompose(program, DOMAIN, 3, Variant.A)
        ledger = deco.halo_ledger()
        assert ledger.policy == "recompute"
        assert ledger.clip_domain == deco.clip_domain
        assert ledger.plans == tuple(i.halo_plan for i in deco.islands)


class TestLedgerValidation:
    def test_policies_tuple(self):
        assert HALO_POLICIES == ("recompute", "exchange", "hybrid")

    def test_unknown_policy_rejected(self):
        partition = partition_domain(DOMAIN, 2, Variant.A)
        with pytest.raises(ValueError, match="unknown halo policy"):
            build_halo_ledger(mpdata_program(), partition, policy="mpi")

    def test_hybrid_requires_threshold(self):
        partition = partition_domain(DOMAIN, 2, Variant.A)
        with pytest.raises(ValueError, match="hybrid_max_flow_points"):
            build_halo_ledger(mpdata_program(), partition, policy="hybrid")

    def test_threshold_only_for_hybrid(self):
        partition = partition_domain(DOMAIN, 2, Variant.A)
        with pytest.raises(ValueError, match="only applies"):
            build_halo_ledger(
                mpdata_program(),
                partition,
                policy="exchange",
                hybrid_max_flow_points=10,
            )


class TestRecomputeGeometry:
    def test_compute_is_the_backward_plan(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        ledger = build_halo_ledger(program, partition, policy="recompute")
        for plan, comp, buf in zip(
            ledger.plans, ledger.compute_boxes, ledger.buffer_boxes
        ):
            assert comp == plan.stage_boxes
            assert buf == plan.stage_boxes
        assert ledger.flows == ()
        assert ledger.exchanged_points() == 0
        assert ledger.step_syncs == 1

    def test_redundant_points_equal_table2_extras(self):
        program = mpdata_program()
        for partition in _partitions():
            ledger = build_halo_ledger(program, partition, policy="recompute")
            report = redundancy_report(program, partition)
            assert ledger.redundant_points == report.extra_points


class TestExchangeGeometry:
    @pytest.mark.parametrize("partition", _partitions(), ids=("A3", "B4", "2x2"))
    def test_compute_boxes_tile_each_stage(self, partition):
        """Pure exchange computes every stage point exactly once."""
        program = mpdata_program()
        ledger = build_halo_ledger(program, partition, policy="exchange")
        assert ledger.redundant_points == 0
        for stage, global_box in enumerate(ledger.global_boxes):
            boxes = [
                comp[stage]
                for comp in ledger.compute_boxes
                if not comp[stage].is_empty()
            ]
            assert sum(box.size for box in boxes) == global_box.size
            for i, a in enumerate(boxes):
                assert global_box.contains(a)
                for b in boxes[i + 1 :]:
                    assert a.intersect(b).is_empty()

    @pytest.mark.parametrize("partition", _partitions(), ids=("A3", "B4", "2x2"))
    def test_flows_fill_every_buffer_exactly(self, partition):
        """Computed part + incoming flows tile each island's buffer box."""
        program = mpdata_program()
        ledger = build_halo_ledger(program, partition, policy="exchange")
        for q in range(partition.count):
            for s in range(len(program.stages)):
                need = ledger.buffer_boxes[q][s]
                have = ledger.compute_boxes[q][s]
                incoming = [
                    f.box for f in ledger.stage_flows[s] if f.dst == q
                ]
                pieces = [have] + incoming if not have.is_empty() else incoming
                assert sum(p.size for p in pieces) == need.size
                for i, a in enumerate(pieces):
                    assert need.contains(a)
                    for b in pieces[i + 1 :]:
                        assert a.intersect(b).is_empty()

    def test_flows_come_from_their_computed_owner(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        ledger = build_halo_ledger(program, partition, policy="exchange")
        assert ledger.exchanged_points() > 0
        for flow in ledger.flows:
            assert flow.src != flow.dst
            assert ledger.compute_boxes[flow.src][flow.stage].contains(flow.box)

    def test_exchanged_points_equal_recompute_extras(self):
        """The computation/communication identity (Sect. 3.2): what
        scenario 1 ships is exactly what scenario 2 recomputes."""
        program = mpdata_program()
        for partition in _partitions():
            ledger = build_halo_ledger(program, partition, policy="exchange")
            report = redundancy_report(program, partition)
            assert ledger.exchanged_points() == report.extra_points

    def test_stage_pair_points_sum_to_total(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        ledger = build_halo_ledger(program, partition, policy="exchange")
        total = sum(
            count
            for s in range(len(program.stages))
            for count in ledger.stage_pair_points(s).values()
        )
        assert total == ledger.exchanged_points()

    def test_step_syncs_count_active_stages(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        ledger = build_halo_ledger(program, partition, policy="exchange")
        assert ledger.step_syncs == len(ledger.active_stages)
        assert ledger.step_syncs <= len(program.stages)

    def test_single_island_ships_nothing(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 1, Variant.A)
        ledger = build_halo_ledger(program, partition, policy="exchange")
        assert ledger.exchanged_points() == 0
        assert ledger.redundant_points == 0

    def test_exchanged_bytes_default_itemsize(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        ledger = build_halo_ledger(program, partition, policy="exchange")
        assert ledger.exchanged_bytes() == ledger.exchanged_points() * 8
        assert ledger.exchanged_bytes(4) == ledger.exchanged_points() * 4


class TestHybridGeometry:
    def test_huge_threshold_is_pure_exchange(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        exchange = build_halo_ledger(program, partition, policy="exchange")
        hybrid = build_halo_ledger(
            program,
            partition,
            policy="hybrid",
            hybrid_max_flow_points=10**9,
        )
        assert hybrid.compute_boxes == exchange.compute_boxes
        assert hybrid.stage_flows == exchange.stage_flows

    def test_zero_threshold_is_pure_recompute(self):
        program = mpdata_program()
        partition = partition_domain(DOMAIN, 3, Variant.A)
        recompute = build_halo_ledger(program, partition, policy="recompute")
        hybrid = build_halo_ledger(
            program, partition, policy="hybrid", hybrid_max_flow_points=0
        )
        assert hybrid.exchanged_points() == 0
        assert hybrid.compute_boxes == recompute.compute_boxes
        assert hybrid.redundant_points == recompute.redundant_points

    def test_intermediate_threshold_interpolates(self):
        """Some boundaries exchange, some recompute; totals sit strictly
        between the two pure policies."""
        program = mpdata_program()
        partition = partition_grid_2d(full_box((24, 18, 8)), 2, 2)
        exchange = build_halo_ledger(program, partition, policy="exchange")
        volumes = sorted(
            sum(
                f.points
                for f in exchange.flows
                if {f.src, f.dst} == {a, b}
            )
            for a, b in partition.neighbours()
        )
        assert volumes[0] < volumes[-1]  # i-cuts and j-cuts ship differently
        threshold = volumes[0]  # keep the cheapest pair(s), convert the rest
        hybrid = build_halo_ledger(
            program,
            partition,
            policy="hybrid",
            hybrid_max_flow_points=threshold,
        )
        assert 0 < hybrid.exchanged_points() < exchange.exchanged_points()
        recompute = build_halo_ledger(program, partition, policy="recompute")
        assert 0 < hybrid.redundant_points < recompute.redundant_points

    def test_hybrid_buffers_cover_compute_and_plan(self):
        program = mpdata_program()
        partition = partition_grid_2d(full_box((24, 18, 8)), 2, 2)
        hybrid = build_halo_ledger(
            program, partition, policy="hybrid", hybrid_max_flow_points=500
        )
        for q in range(partition.count):
            for s in range(len(program.stages)):
                buf = hybrid.buffer_boxes[q][s]
                comp = hybrid.compute_boxes[q][s]
                if not comp.is_empty():
                    assert buf.contains(comp)
                plan_box = hybrid.plans[q].stage_boxes[s]
                if not plan_box.is_empty():
                    assert buf.contains(plan_box)


class TestBoxDifference:
    """``Box.difference`` powers the flow carving; pin its contract."""

    def test_disjoint_pieces_tile_the_remainder(self):
        a = Box((0, 0, 0), (10, 10, 10))
        b = Box((3, 4, 5), (8, 12, 9))
        pieces = a.difference(b)
        inter = a.intersect(b)
        assert sum(p.size for p in pieces) == a.size - inter.size
        for i, p in enumerate(pieces):
            assert a.contains(p)
            assert p.intersect(b).is_empty()
            for q in pieces[i + 1 :]:
                assert p.intersect(q).is_empty()

    def test_no_overlap_returns_self(self):
        a = Box((0, 0, 0), (4, 4, 4))
        assert a.difference(Box((4, 0, 0), (8, 4, 4))) == (a,)

    def test_containment_returns_empty(self):
        a = Box((2, 2, 2), (4, 4, 4))
        assert a.difference(Box((0, 0, 0), (10, 10, 10))) == ()

    def test_empty_self_returns_empty(self):
        empty = Box((3, 3, 3), (3, 5, 5))
        assert empty.difference(Box((0, 0, 0), (10, 10, 10))) == ()

"""Neighbour detection and 2D grid partitioning.

The hybrid halo policy walks :meth:`Partition.neighbours` to decide, per
island boundary, whether to exchange or recompute — so face detection
must be exact on 2D grids too: tiles that only share an edge or a corner
are *not* neighbours, and non-divisible extents must still tile the
domain and report every face-sharing pair.
"""

from __future__ import annotations

import pytest

from repro.core import Variant, partition_domain, partition_grid_2d
from repro.stencil import full_box


def _expected_grid_pairs(partition, pi, pj):
    """Face-sharing pairs of a serpentine pi x pj grid, from geometry."""
    pairs = set()
    for a in range(partition.count):
        for b in range(a + 1, partition.count):
            pa, pb = partition.parts[a], partition.parts[b]
            for axis in (0, 1):
                other = 1 - axis
                touches = pa.hi[axis] == pb.lo[axis] or pb.hi[axis] == pa.lo[axis]
                overlaps = (
                    min(pa.hi[other], pb.hi[other])
                    > max(pa.lo[other], pb.lo[other])
                )
                if touches and overlaps:
                    pairs.add((a, b))
    return pairs


class TestNeighbours1D:
    @pytest.mark.parametrize("variant", (Variant.A, Variant.B))
    def test_slabs_form_a_chain(self, variant):
        partition = partition_domain(full_box((17, 13, 4)), 4, variant)
        assert partition.neighbours() == [(0, 1), (1, 2), (2, 3)]
        assert partition.cut_count() == 3

    def test_single_island_has_no_neighbours(self):
        partition = partition_domain(full_box((8, 8, 4)), 1)
        assert partition.neighbours() == []


class TestNeighbours2D:
    def test_two_by_two_pairs(self):
        # Serpentine order: 0=(lo i, lo j), 1=(lo i, hi j),
        # 2=(hi i, hi j), 3=(hi i, lo j).
        partition = partition_grid_2d(full_box((8, 8, 4)), 2, 2)
        assert set(partition.neighbours()) == {(0, 1), (0, 3), (1, 2), (2, 3)}

    def test_diagonal_tiles_are_not_neighbours(self):
        partition = partition_grid_2d(full_box((8, 8, 4)), 2, 2)
        pairs = set(partition.neighbours())
        assert (0, 2) not in pairs  # corner contact only
        assert (1, 3) not in pairs

    @pytest.mark.parametrize(
        "shape,pi,pj",
        [
            ((12, 12, 4), 2, 3),  # divisible
            ((13, 11, 3), 2, 3),  # both split axes leave remainders
            ((7, 5, 2), 3, 2),  # parts of width 3/2 and 3/2
            ((9, 4, 2), 4, 4),  # j parts of width 1
        ],
    )
    def test_nondivisible_grids_tile_and_pair_correctly(self, shape, pi, pj):
        partition = partition_grid_2d(full_box(shape), pi, pj)
        partition.validate()
        assert partition.count == pi * pj
        pairs = partition.neighbours()
        assert all(a < b for a, b in pairs)
        assert len(pairs) == len(set(pairs))
        assert set(pairs) == _expected_grid_pairs(partition, pi, pj)
        # A pi x pj grid has pi*(pj-1) j-cuts and pj*(pi-1) i-cuts.
        assert len(pairs) == pi * (pj - 1) + pj * (pi - 1)

    def test_serpentine_consecutive_parts_share_a_face(self):
        partition = partition_grid_2d(full_box((13, 11, 3)), 3, 4)
        pairs = set(partition.neighbours())
        for index in range(partition.count - 1):
            assert (index, index + 1) in pairs

    def test_part_extents_differ_by_at_most_one(self):
        partition = partition_grid_2d(full_box((13, 11, 3)), 2, 3)
        widths_i = {p.shape[0] for p in partition.parts}
        widths_j = {p.shape[1] for p in partition.parts}
        assert max(widths_i) - min(widths_i) <= 1
        assert max(widths_j) - min(widths_j) <= 1

"""Tests for domain partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Partition, Variant, partition_domain, partition_grid_2d
from repro.stencil import Box, full_box


class TestVariant:
    def test_axes(self):
        assert Variant.A.axis == 0
        assert Variant.B.axis == 1

    def test_2d_has_no_axis(self):
        with pytest.raises(ValueError):
            Variant.GRID_2D.axis


class TestPartition1D:
    def test_variant_a_splits_i(self):
        partition = partition_domain(full_box((12, 4, 4)), 3, Variant.A)
        assert [p.lo[0] for p in partition.parts] == [0, 4, 8]
        assert all(p.shape[1:] == (4, 4) for p in partition.parts)

    def test_variant_b_splits_j(self):
        partition = partition_domain(full_box((4, 12, 4)), 3, Variant.B)
        assert [p.lo[1] for p in partition.parts] == [0, 4, 8]

    def test_equal_parts(self):
        partition = partition_domain(full_box((14, 4, 4)), 7)
        sizes = [p.size for p in partition.parts]
        assert len(set(sizes)) == 1

    def test_near_equal_with_remainder(self):
        partition = partition_domain(full_box((10, 4, 4)), 3)
        widths = [p.shape[0] for p in partition.parts]
        assert widths == [4, 3, 3]

    def test_single_island_is_whole_domain(self):
        domain = full_box((8, 8, 8))
        partition = partition_domain(domain, 1)
        assert partition.parts == (domain,)

    def test_validate_passes(self):
        partition_domain(full_box((16, 8, 4)), 5).validate()

    def test_too_many_islands_rejected(self):
        with pytest.raises(ValueError):
            partition_domain(full_box((4, 4, 4)), 5)

    def test_nonpositive_islands_rejected(self):
        with pytest.raises(ValueError):
            partition_domain(full_box((4, 4, 4)), 0)

    def test_2d_via_1d_entrypoint_rejected(self):
        with pytest.raises(ValueError, match="partition_grid_2d"):
            partition_domain(full_box((8, 8, 8)), 4, Variant.GRID_2D)

    def test_neighbours_form_a_chain(self):
        partition = partition_domain(full_box((20, 4, 4)), 5)
        assert partition.neighbours() == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert partition.cut_count() == 4


class TestPartition2D:
    def test_grid_tiles_domain(self):
        partition = partition_grid_2d(full_box((8, 12, 4)), 2, 3)
        partition.validate()
        assert partition.count == 6

    def test_serpentine_keeps_consecutive_parts_adjacent(self):
        partition = partition_grid_2d(full_box((8, 12, 4)), 2, 3)
        for a, b in zip(partition.parts, partition.parts[1:]):
            shared_axes = sum(
                1
                for axis in range(3)
                if max(a.lo[axis], b.lo[axis]) < min(a.hi[axis], b.hi[axis])
            )
            assert shared_axes == 2  # face neighbours

    def test_rejects_nonpositive_grid(self):
        with pytest.raises(ValueError):
            partition_grid_2d(full_box((8, 8, 4)), 0, 2)


class TestProperties:
    @given(
        ni=st.integers(2, 64),
        islands=st.integers(1, 8),
        variant=st.sampled_from([Variant.A, Variant.B]),
    )
    def test_cover_exactly(self, ni, islands, variant):
        shape = (ni, 32, 4) if variant is Variant.A else (32, ni, 4)
        if islands > ni:
            with pytest.raises(ValueError):
                partition_domain(full_box(shape), islands, variant)
            return
        partition = partition_domain(full_box(shape), islands, variant)
        partition.validate()
        assert partition.count == islands
        assert partition.cut_count() == islands - 1

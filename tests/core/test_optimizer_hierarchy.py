"""Tests for the strategy optimizer and two-level redundancy analysis."""

import pytest

from repro.core import (
    StrategyChoice,
    Variant,
    grid_factorizations,
    recommend,
    two_level_redundancy,
)
from repro.machine import sgi_uv2000, uv2000_costs
from repro.stencil import full_box


@pytest.fixture(scope="module")
def machine():
    return sgi_uv2000()


@pytest.fixture(scope="module")
def costs():
    return uv2000_costs()


class TestGridFactorizations:
    def test_excludes_trivial(self):
        assert (1, 14) not in grid_factorizations(14)
        assert (14, 1) not in grid_factorizations(14)

    def test_fourteen(self):
        assert grid_factorizations(14) == [(2, 7), (7, 2)]

    def test_twelve(self):
        assert grid_factorizations(12) == [(2, 6), (3, 4), (4, 3), (6, 2)]

    def test_prime(self):
        assert grid_factorizations(13) == []


class TestRecommend:
    def test_islands_wins_on_uv2000(self, mpdata, machine, costs):
        ranked = recommend(mpdata, (1024, 512, 64), 50, 14, machine, costs)
        assert ranked[0].label.startswith("islands")
        assert ranked == sorted(ranked, key=lambda c: c.predicted_seconds)

    def test_covers_all_strategy_families(self, mpdata, machine, costs):
        ranked = recommend(mpdata, (1024, 512, 64), 50, 8, machine, costs)
        labels = {choice.label for choice in ranked}
        assert "original (first touch)" in labels
        assert "original (serial init)" in labels
        assert "pure (3+1)D" in labels
        assert "islands 1D-A" in labels
        assert "islands 2D 2x4" in labels

    def test_single_processor_ties_fused_and_islands(self, mpdata, machine, costs):
        ranked = recommend(mpdata, (1024, 512, 64), 50, 1, machine, costs)
        best = ranked[0]
        assert best.label in ("islands", "pure (3+1)D")

    def test_infeasible_configs_skipped(self, mpdata, machine, costs):
        """On a degenerate grid (j = 1) neither 1D-B, 2D grids nor the
        cache blocker are feasible; the recommender must still rank what
        remains instead of raising."""
        ranked = recommend(mpdata, (64, 1, 64), 5, 4, machine, costs)
        labels = {choice.label for choice in ranked}
        assert "original (first touch)" in labels
        assert not any("2D" in label for label in labels)
        assert "islands 1D-B" not in labels

    def test_invalid_processors(self, mpdata, machine, costs):
        with pytest.raises(ValueError):
            recommend(mpdata, (64, 64, 64), 5, 0, machine, costs)

    def test_str_rendering(self):
        choice = StrategyChoice("x", 1.5, 100.0)
        assert "1.500 s" in str(choice)


class TestTwoLevel:
    def test_no_inner_split_equals_table2(self, mpdata, paper_domain):
        result = two_level_redundancy(mpdata, paper_domain, 14, (1, 1))
        assert result.inner_percent == 0.0
        assert result.total_percent == pytest.approx(result.outer_percent)

    def test_inner_split_adds_redundancy(self, mpdata, paper_domain):
        nested = two_level_redundancy(mpdata, paper_domain, 14, (2, 2))
        assert nested.inner_percent > 0.0
        assert nested.inner_count == 4

    def test_thin_axis_costs_more(self, mpdata, paper_domain):
        """i-slabs at 14 islands are ~73 cells; splitting them 8x is far
        costlier than splitting the 512-cell j axis."""
        along_i = two_level_redundancy(mpdata, paper_domain, 14, (8, 1))
        along_j = two_level_redundancy(mpdata, paper_domain, 14, (1, 8))
        assert along_i.total_percent > 3 * along_j.total_percent

    def test_2d_inner_between_extremes(self, mpdata, paper_domain):
        i8 = two_level_redundancy(mpdata, paper_domain, 14, (8, 1))
        mixed = two_level_redundancy(mpdata, paper_domain, 14, (4, 2))
        j8 = two_level_redundancy(mpdata, paper_domain, 14, (1, 8))
        assert j8.total_percent < mixed.total_percent < i8.total_percent

    def test_invalid_arguments(self, mpdata, paper_domain):
        with pytest.raises(ValueError):
            two_level_redundancy(mpdata, paper_domain, 0, (2, 2))
        with pytest.raises(ValueError):
            two_level_redundancy(mpdata, paper_domain, 2, (0, 2))

    def test_max_core_points_bounds_mean(self, mpdata, paper_domain):
        result = two_level_redundancy(mpdata, paper_domain, 4, (2, 2))
        total = result.baseline_points * (1 + result.total_percent / 100.0)
        mean = total / (4 * 4)
        assert result.max_core_points >= mean * 0.999

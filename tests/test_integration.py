"""End-to-end integration: one walk through the whole public API.

Beyond per-module tests, these assert *cross-module consistency* — the
same quantity reached through different doors must agree: the recommender
vs the table-3 driver, decompose() vs the Table 2 accounting, timeline
totals vs simulation totals, flop counts vs sustained Gflop/s, functional
stats vs analytic plans.
"""

import numpy as np
import pytest

from repro import paperdata
from repro.analysis import timeline_report
from repro.core import Variant, decompose, recommend, redundancy_report, partition_domain
from repro.experiments import ExperimentSetup, table2, table3, table4
from repro.machine import simulate, sgi_uv2000, uv2000_costs
from repro.mpdata import MpdataSolver, mpdata_program, random_state
from repro.runtime import MpdataIslandSolver
from repro.sched import build_islands_plan
from repro.stencil import (
    execute_plan,
    full_box,
    plan_flops,
    program_arith_flops_per_point,
    required_regions,
)


@pytest.fixture(scope="module")
def env():
    return mpdata_program(), sgi_uv2000(), uv2000_costs()


class TestCrossModuleConsistency:
    def test_recommender_agrees_with_table3(self, env):
        """recommend()'s islands-1D-A prediction is exactly the Table 3
        driver's islands time at the same P."""
        program, machine, costs = env
        setup = ExperimentSetup.paper(processors=(14,))
        t3 = table3.run(setup)
        ranked = recommend(
            program, paperdata.GRID_SHAPE, paperdata.TIME_STEPS, 14,
            machine, costs,
        )
        one_d_a = next(c for c in ranked if c.label == "islands 1D-A")
        assert one_d_a.predicted_seconds == pytest.approx(
            t3.islands_model[0], rel=1e-12
        )

    def test_decompose_agrees_with_table2(self, env):
        """The islands executor's decomposition and the Table 2 driver
        count the same redundancy."""
        program, _, _ = env
        domain = full_box(paperdata.GRID_SHAPE)
        decomposition = decompose(program, domain, 8, Variant.A)
        t2 = table2.run()
        assert decomposition.redundancy().extra_percent == pytest.approx(
            t2.variant_a_model[7], rel=1e-12
        )

    def test_timeline_total_matches_simulation(self, env):
        program, machine, costs = env
        result = simulate(
            build_islands_plan(
                program, paperdata.GRID_SHAPE, 50, 14, machine, costs
            )
        )
        report = timeline_report(result)
        assert report.total_seconds == pytest.approx(result.total_seconds)
        assert sum(
            row.total_seconds for row in report.rows
        ) == pytest.approx(result.total_seconds, rel=1e-9)

    def test_sustained_gflops_equals_flops_over_time(self, env):
        """Table 4's sustained column is exactly plan flops / plan time."""
        program, machine, costs = env
        setup = ExperimentSetup.paper(processors=(14,))
        t4 = table4.run(setup)
        plan = build_islands_plan(
            program, paperdata.GRID_SHAPE, paperdata.TIME_STEPS, 14,
            machine, costs,
        )
        result = simulate(plan)
        assert t4.sustained_model[0] == pytest.approx(
            plan.total_flops / result.total_seconds / 1e9, rel=1e-9
        )

    def test_plan_flops_match_functional_execution(self, env):
        """The analytic flop count of an island's halo plan equals what the
        interpreter actually executes for that plan."""
        program, _, _ = env
        shape = (24, 16, 8)
        solver = MpdataSolver(shape)
        state = random_state(shape, seed=55)
        inputs = solver.prepare_inputs(state)
        plan = required_regions(
            program, solver.domain, domain=solver.extended_domain
        )
        _, stats = execute_plan(program, plan, inputs)
        expected = plan_flops(program, plan)  # all-ops convention
        assert stats.flops == expected

    def test_islands_flops_budget_consistent(self, env):
        """Plan-level total flops equal per-point flops times points plus
        the redundancy surplus."""
        program, machine, costs = env
        shape = paperdata.GRID_SHAPE
        plan = build_islands_plan(program, shape, 1, 14, machine, costs)
        points = full_box(shape).size
        base = program_arith_flops_per_point(program) * points
        report = redundancy_report(
            program, partition_domain(full_box(shape), 14, Variant.A)
        )
        # Redundant points carry stage-dependent flops, so the surplus is
        # bounded by the extra-point fraction scaled by the heaviest and
        # lightest stages; a coarse band suffices as a consistency net.
        surplus = plan.total_flops / base - 1.0
        assert 0.0 < surplus < 3 * report.extra_percent / 100.0


class TestEndToEndStory:
    def test_the_whole_pipeline(self, env):
        """The README story, executed: solve, verify, account, simulate,
        recommend — all consistent on one configuration."""
        program, machine, costs = env
        shape = (32, 24, 8)
        state = random_state(shape, seed=2017)

        # 1. Functional: whole-domain vs threaded islands, bit-exact.
        whole = MpdataSolver(shape, compiled=True).run(state, 3)
        split = MpdataIslandSolver(shape, 4, threads=4, compiled=True).run(
            state, 3
        )
        np.testing.assert_array_equal(whole, split)

        # 2. Physics invariants.
        assert whole.min() >= 0.0
        assert (state.h * whole).sum() == pytest.approx(
            (state.h * state.x).sum(), rel=1e-11
        )

        # 3. Accounting: redundancy small and positive at 4 islands.
        decomposition = decompose(program, full_box(shape), 4, Variant.A)
        extra = decomposition.redundancy().extra_percent
        assert 0.0 < extra < 50.0

        # 4. Model: islands beat the alternatives on the paper machine.
        ranked = recommend(program, (1024, 512, 64), 50, 14, machine, costs)
        assert ranked[0].label.startswith("islands")

"""Grid-convergence tests: the defining accuracy property of MPDATA.

A smooth profile is translated by a quarter of a periodic domain; halving
the mesh spacing (with fixed Courant number, so twice the steps) must
shrink the error at first order for donor-cell upwind and at second order
for MPDATA — that is the entire point of the antidiffusive pass
(Smolarkiewicz & Margolin 1998).
"""

import math

import numpy as np
import pytest

from repro.mpdata import (
    MpdataSolver,
    MpdataState,
    mpdata_program,
    uniform_velocity,
    upwind_program,
)


def _translation_error(cells: int, program) -> float:
    """Mean |error| after translating a Gaussian by cells/4 (periodic)."""
    shape = (cells, 4, 4)
    centres = (np.arange(cells) + 0.5) / cells
    profile = np.exp(-((centres - 0.35) ** 2) / (2.0 * 0.08**2))
    x = np.tile(profile[:, None, None], (1, 4, 4))
    u1, u2, u3 = uniform_velocity(shape, (0.25, 0.0, 0.0))
    state = MpdataState(x, u1, u2, u3, np.ones(shape))
    solver = MpdataSolver(shape, program=program, compiled=True)
    out = solver.run(state, steps=cells)  # 0.25 * cells cells of travel
    exact = np.roll(x, cells // 4, axis=0)
    return float(np.abs(out - exact).mean())


def _order(coarse: float, fine: float) -> float:
    return math.log2(coarse / fine)


class TestConvergenceOrders:
    def test_upwind_is_first_order(self):
        order = _order(
            _translation_error(32, upwind_program()),
            _translation_error(64, upwind_program()),
        )
        assert 0.6 < order < 1.3

    def test_mpdata_is_second_order(self):
        order = _order(
            _translation_error(32, mpdata_program()),
            _translation_error(64, mpdata_program()),
        )
        assert 1.6 < order < 2.4

    def test_fct_limiter_does_not_destroy_accuracy(self):
        """The nonoscillatory option must cost almost nothing on smooth
        data (limiters only engage near extrema)."""
        limited = _translation_error(64, mpdata_program(iord=2, nonosc=True))
        basic = _translation_error(64, mpdata_program(iord=2, nonosc=False))
        assert limited <= basic * 1.05

    def test_third_pass_reduces_the_error_constant(self):
        second = _translation_error(64, mpdata_program(iord=2, nonosc=False))
        third = _translation_error(64, mpdata_program(iord=3, nonosc=False))
        assert third < second

    def test_mpdata_beats_upwind_outright(self):
        assert _translation_error(64, mpdata_program()) < 0.25 * (
            _translation_error(64, upwind_program())
        )

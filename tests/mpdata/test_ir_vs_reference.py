"""Cross-validation: the IR-interpreted MPDATA against the independent
NumPy reference.

The two implementations share no code — the IR path goes through expression
trees, halo plans and ghost cells; the reference uses ``np.roll``.  Their
agreement to round-off validates the IR definitions that every halo count
and flop number in the reproduction is derived from.
"""

import numpy as np
import pytest

from repro.mpdata import (
    MpdataSolver,
    MpdataState,
    random_state,
    reference_run,
    reference_step,
    reference_upwind_step,
    rotation_state,
    translation_state,
    upwind_program,
)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("shape", [(12, 10, 8), (16, 8, 8), (9, 14, 7)])
def test_single_step_matches(seed, shape):
    state = random_state(shape, seed=seed)
    solver = MpdataSolver(shape)
    np.testing.assert_allclose(
        solver.step(state), reference_step(state), rtol=0, atol=1e-14
    )


def test_multi_step_matches():
    shape = (14, 12, 8)
    state = random_state(shape, seed=11)
    solver = MpdataSolver(shape)
    np.testing.assert_allclose(
        solver.run(state, 6), reference_run(state, 6), rtol=0, atol=1e-12
    )


def test_upwind_subprogram_matches():
    shape = (12, 12, 8)
    state = random_state(shape, seed=12)
    solver = MpdataSolver(shape, program=upwind_program())
    np.testing.assert_allclose(
        solver.step(state), reference_upwind_step(state), rtol=0, atol=1e-15
    )


def test_translation_workload_matches():
    shape = (24, 12, 8)
    state = translation_state(shape)
    solver = MpdataSolver(shape)
    np.testing.assert_allclose(
        solver.run(state, 4), reference_run(state, 4), rtol=0, atol=1e-13
    )


def test_rotation_workload_matches():
    state = rotation_state((16, 16, 4), omega=0.02)
    solver = MpdataSolver((16, 16, 4))
    np.testing.assert_allclose(
        solver.run(state, 3), reference_run(state, 3), rtol=0, atol=1e-13
    )


def test_ir_solver_conserves_and_stays_positive():
    shape = (16, 12, 8)
    state = random_state(shape, seed=13)
    solver = MpdataSolver(shape)
    out = solver.run(state, 5)
    assert out.min() >= 0.0
    assert np.isclose(
        (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-12
    )

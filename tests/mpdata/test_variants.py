"""Tests for the MPDATA scheme variants (iord, nonosc)."""

import numpy as np
import pytest

from repro.mpdata import (
    MpdataSolver,
    MpdataState,
    gaussian_blob,
    mpdata_program,
    random_state,
    reference_step,
    reference_upwind_step,
    uniform_velocity,
    upwind_program,
)
from repro.stencil import lint_program, program_halo_depth


class TestProgramShapes:
    @pytest.mark.parametrize(
        "iord,nonosc,stages",
        [
            (1, True, 4),
            (2, True, 17),
            (2, False, 8),
            (3, True, 30),
            (3, False, 12),
            (4, True, 43),
            (4, False, 16),
        ],
    )
    def test_stage_counts(self, iord, nonosc, stages):
        assert len(mpdata_program(iord=iord, nonosc=nonosc).stages) == stages

    def test_iord_must_be_positive(self):
        with pytest.raises(ValueError):
            mpdata_program(iord=0)

    def test_no_dead_stages_in_any_variant(self):
        for iord in (1, 2, 3):
            for nonosc in (True, False):
                assert lint_program(mpdata_program(iord=iord, nonosc=nonosc)) == []

    def test_upwind_alias(self):
        assert upwind_program() is mpdata_program(iord=1)

    def test_halo_grows_with_iord(self):
        depth2 = program_halo_depth(mpdata_program(iord=2))
        depth3 = program_halo_depth(mpdata_program(iord=3))
        assert max(depth3[0]) > max(depth2[0])
        assert max(depth3[1]) > max(depth2[1])

    def test_canonical_program_unchanged(self):
        program = mpdata_program()
        assert program.name == "mpdata3d_nonosc"
        assert len(program.stages) == 17


class TestVariantNumerics:
    SHAPE = (14, 12, 8)

    @pytest.fixture()
    def state(self):
        return random_state(self.SHAPE, seed=31)

    def test_iord1_matches_reference_upwind(self, state):
        out = MpdataSolver(self.SHAPE, program=mpdata_program(iord=1)).step(state)
        np.testing.assert_allclose(
            out, reference_upwind_step(state), rtol=0, atol=1e-15
        )

    def test_iord2_basic_matches_reference(self, state):
        out = MpdataSolver(
            self.SHAPE, program=mpdata_program(iord=2, nonosc=False)
        ).step(state)
        np.testing.assert_allclose(
            out, reference_step(state, nonosc=False), rtol=0, atol=1e-14
        )

    @pytest.mark.parametrize("iord", [2, 3])
    def test_conservation_any_variant(self, state, iord):
        for nonosc in (True, False):
            solver = MpdataSolver(
                self.SHAPE, program=mpdata_program(iord=iord, nonosc=nonosc)
            )
            out = solver.run(state, 3)
            np.testing.assert_allclose(
                (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-11
            )

    def test_nonosc_iord3_preserves_positivity(self, state):
        solver = MpdataSolver(
            self.SHAPE, program=mpdata_program(iord=3, nonosc=True)
        )
        out = solver.run(state, 4)
        assert out.min() >= 0.0

    def test_higher_iord_less_diffusive(self):
        """Each corrective pass recovers more of a translating blob's peak:
        iord=1 < iord=2 <= iord=3 after several steps."""
        shape = (32, 8, 4)
        x = gaussian_blob(shape, sigma=3.0)
        u1, u2, u3 = uniform_velocity(shape, (0.25, 0.0, 0.0))
        h = np.ones(shape)
        state = MpdataState(x, u1, u2, u3, h)
        peaks = {}
        for iord in (1, 2, 3):
            solver = MpdataSolver(
                shape, program=mpdata_program(iord=iord, nonosc=False)
            )
            peaks[iord] = solver.run(state, 8).max()
        assert peaks[1] < peaks[2] <= peaks[3] + 1e-9

    def test_nonosc_removes_overshoots(self):
        """On a steep (cone-like) profile, the basic iord=2 scheme
        overshoots the initial maximum somewhere during a long run; the
        nonosc variant never does."""
        shape = (32, 8, 4)
        x = np.zeros(shape)
        x[12:20, 2:6, 1:3] = 1.0  # a box profile with sharp edges
        u1, u2, u3 = uniform_velocity(shape, (0.25, 0.0, 0.0))
        state = MpdataState(x, u1, u2, u3, np.ones(shape))

        basic = MpdataSolver(
            shape, program=mpdata_program(iord=2, nonosc=False)
        ).run(state, 16)
        limited = MpdataSolver(
            shape, program=mpdata_program(iord=2, nonosc=True)
        ).run(state, 16)
        assert basic.max() > 1.0 + 1e-6  # dispersive overshoot
        assert limited.max() <= 1.0 + 1e-12
        assert limited.min() >= -1e-12


class TestDimensionality:
    """The 2D and 1D program variants (grids too thin for a k-halo)."""

    def test_stage_counts_by_dims(self):
        assert len(mpdata_program(dims=3).stages) == 17
        assert len(mpdata_program(dims=2).stages) == 14
        assert len(mpdata_program(dims=1).stages) == 11

    def test_2d_drops_u3(self):
        inputs = {f.name for f in mpdata_program(dims=2).input_fields}
        assert inputs == {"x", "u1", "u2", "h"}

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            mpdata_program(dims=4)

    def test_2d_matches_3d_reference_on_thin_grid(self):
        """At nk = 1 with u3 = 0, the 3D reference degenerates to 2D
        (np.roll over a size-1 axis is the identity); the dedicated 2D
        program must reproduce it bit for bit."""
        shape = (16, 12, 1)
        rng = np.random.default_rng(3)
        state = MpdataState(
            rng.random(shape),
            rng.uniform(-0.08, 0.08, shape),
            rng.uniform(-0.08, 0.08, shape),
            np.zeros(shape),
            rng.uniform(0.8, 1.25, shape),
        )
        out = MpdataSolver(shape, program=mpdata_program(dims=2)).step(state)
        np.testing.assert_array_equal(out, reference_step(state))

    def test_2d_halo_confined_to_ij(self):
        from repro.mpdata.solver import GhostSpec

        spec = GhostSpec.for_program(mpdata_program(dims=2), (32, 32, 1))
        assert spec.lo == (3, 3, 0)
        assert spec.hi == (3, 3, 0)

    def test_2d_conserves_and_stays_positive(self):
        shape = (20, 16, 1)
        rng = np.random.default_rng(4)
        state = MpdataState(
            rng.random(shape),
            rng.uniform(-0.08, 0.08, shape),
            rng.uniform(-0.08, 0.08, shape),
            np.zeros(shape),
            rng.uniform(0.8, 1.25, shape),
        )
        out = MpdataSolver(shape, program=mpdata_program(dims=2)).run(state, 4)
        assert out.min() >= 0.0
        np.testing.assert_allclose(
            (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-12
        )

    def test_2d_islands_bit_exact(self):
        from repro.runtime import MpdataIslandSolver

        shape = (20, 16, 1)
        rng = np.random.default_rng(5)
        state = MpdataState(
            rng.random(shape),
            rng.uniform(-0.08, 0.08, shape),
            rng.uniform(-0.08, 0.08, shape),
            np.zeros(shape),
            rng.uniform(0.8, 1.25, shape),
        )
        program = mpdata_program(dims=2)
        whole = MpdataSolver(shape, program=program).step(state)
        split = MpdataIslandSolver(shape, 3, program=program).step(state)
        np.testing.assert_array_equal(whole, split)

    def test_1d_upwind_shift(self):
        """dims=1 with C=1 is an exact shift, like the 3D case."""
        shape = (16, 1, 1)
        rng = np.random.default_rng(6)
        x = rng.random(shape)
        state = MpdataState(
            x, np.full(shape, 1.0), np.zeros(shape), np.zeros(shape),
            np.ones(shape),
        )
        out = MpdataSolver(
            shape, program=mpdata_program(iord=1, dims=1)
        ).step(state)
        np.testing.assert_allclose(out, np.roll(x, 1, axis=0), atol=1e-14)


class TestVariableSign:
    """The absolute-value normalisation for fields that cross zero."""

    SHAPE = (32, 8, 4)

    def _dipole_state(self):
        x = gaussian_blob(self.SHAPE, centre=(10, 4, 2), sigma=2.5) - (
            gaussian_blob(self.SHAPE, centre=(22, 4, 2), sigma=2.5)
        )
        u1, u2, u3 = uniform_velocity(self.SHAPE, (0.25, 0.0, 0.0))
        return MpdataState(x, u1, u2, u3, np.ones(self.SHAPE))

    def test_program_name_and_shape(self):
        program = mpdata_program(variable_sign=True)
        assert "varsign" in program.name
        assert len(program.stages) == 17

    def test_canonical_default_unchanged(self):
        assert mpdata_program().name == "mpdata3d_nonosc"

    def test_beats_upwind_on_sign_crossing_field(self):
        state = self._dipole_state()
        exact = np.roll(state.x, 2, axis=0)
        solver = MpdataSolver(
            self.SHAPE, program=mpdata_program(variable_sign=True)
        )
        varsign = solver.run(state, 8)
        upwind = state.x.copy()
        for _ in range(8):
            upwind = reference_upwind_step(
                MpdataState(upwind, state.u1, state.u2, state.u3, state.h)
            )
        assert np.abs(varsign - exact).mean() < 0.5 * np.abs(
            upwind - exact
        ).mean()

    def test_conserves_and_stays_bounded(self):
        state = self._dipole_state()
        solver = MpdataSolver(
            self.SHAPE, program=mpdata_program(variable_sign=True)
        )
        out = solver.run(state, 8)
        assert out.sum() == pytest.approx(state.x.sum(), abs=1e-10)
        assert out.min() >= state.x.min() - 1e-9
        assert out.max() <= state.x.max() + 1e-9

    def test_positive_definite_form_fails_here(self):
        """The reason the option exists: the default normalisation divides
        by cell sums that vanish between cells of opposite sign."""
        state = self._dipole_state()
        out = MpdataSolver(self.SHAPE).run(state, 8)
        assert (not np.isfinite(out).all()) or np.abs(out).max() > 10.0

    def test_matches_default_on_positive_fields_closely(self):
        """On strictly positive data the two normalisations agree to a few
        percent (identical when |x| == x except for rounding paths)."""
        state = random_state(self.SHAPE, seed=99)
        default = MpdataSolver(self.SHAPE).run(state, 3)
        varsign = MpdataSolver(
            self.SHAPE, program=mpdata_program(variable_sign=True)
        ).run(state, 3)
        np.testing.assert_allclose(varsign, default, rtol=0.05, atol=1e-3)

    def test_islands_bit_exact(self):
        from repro.runtime import MpdataIslandSolver

        state = self._dipole_state()
        program = mpdata_program(variable_sign=True)
        whole = MpdataSolver(self.SHAPE, program=program).step(state)
        split = MpdataIslandSolver(self.SHAPE, 4, program=program).step(state)
        np.testing.assert_array_equal(whole, split)

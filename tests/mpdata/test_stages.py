"""Structural tests on the 17-stage MPDATA program."""

from repro.mpdata import FIELD_OUTPUT, mpdata_program, upwind_program
from repro.stencil import lint_program, program_halo_depth


class TestStructure:
    def test_seventeen_stages(self, mpdata):
        assert len(mpdata.stages) == 17

    def test_stage_names_in_paper_order(self, mpdata):
        names = [s.name for s in mpdata.stages]
        assert names == [
            "flux_i", "flux_j", "flux_k",
            "upwind",
            "pseudo_vel_i", "pseudo_vel_j", "pseudo_vel_k",
            "local_max", "local_min",
            "flux_in", "flux_out",
            "beta_up", "beta_dn",
            "limited_vel_i", "limited_vel_j", "limited_vel_k",
            "corrected",
        ]

    def test_five_inputs_one_output(self, mpdata):
        """One step loads five 3D arrays and saves one (Sect. 3.1)."""
        assert {f.name for f in mpdata.input_fields} == {
            "x", "u1", "u2", "u3", "h"
        }
        assert [f.name for f in mpdata.output_fields] == [FIELD_OUTPUT]

    def test_coefficients_marked_time_invariant(self, mpdata):
        invariant = {
            f.name for f in mpdata.input_fields if not f.time_varying
        }
        assert invariant == {"u1", "u2", "u3", "h"}

    def test_no_dead_stages(self, mpdata):
        assert lint_program(mpdata) == []

    def test_program_is_cached(self):
        assert mpdata_program() is mpdata_program()

    def test_halo_depth(self, mpdata):
        lo, hi = program_halo_depth(mpdata)
        assert lo == (2, 2, 2)
        assert hi == (3, 3, 3)

    def test_heterogeneity(self, mpdata):
        """The stages really are *heterogeneous*: many distinct patterns."""
        patterns = set()
        for stage in mpdata.stages:
            offsets = frozenset(
                (name, frozenset(offs))
                for name, offs in stage.footprint.items()
            )
            patterns.add(offsets)
        # Every stage has a unique footprint except local_max/local_min,
        # which read the same neighbourhood with max vs min.
        assert len(patterns) == 16


class TestAxisSymmetry:
    def test_flux_stages_symmetric_across_axes(self, mpdata):
        """flux_i/j/k have identical cost, pattern rotated per axis."""
        f1, f2, f3 = mpdata.stages[0], mpdata.stages[1], mpdata.stages[2]
        assert (
            f1.flops_per_point
            == f2.flops_per_point
            == f3.flops_per_point
        )
        assert f1.footprint["x"] == {(0, 0, 0), (-1, 0, 0)}
        assert f2.footprint["x"] == {(0, 0, 0), (0, -1, 0)}
        assert f3.footprint["x"] == {(0, 0, 0), (0, 0, -1)}

    def test_pseudo_velocity_stages_symmetric(self, mpdata):
        v1, v2, v3 = mpdata.stages[4], mpdata.stages[5], mpdata.stages[6]
        assert (
            v1.flops_per_point
            == v2.flops_per_point
            == v3.flops_per_point
        )


class TestUpwindSubProgram:
    def test_four_stages(self, upwind):
        assert len(upwind.stages) == 4

    def test_shares_flux_definitions(self, mpdata, upwind):
        assert upwind.stages[0].expr == mpdata.stages[0].expr

    def test_stage_halo_is_one_above(self, upwind):
        # Stage *compute* halo: the flux stages extend one face above the
        # target (divergence reads f[i+1]) and none below; the deeper
        # *input* halo (x at i-1 through the flux) shows up in GhostSpec.
        lo, hi = program_halo_depth(upwind)
        assert lo == (0, 0, 0)
        assert hi == (1, 1, 1)

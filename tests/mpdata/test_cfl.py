"""Tests for the exact CFL stability analysis."""

import numpy as np
import pytest

from repro.mpdata import (
    MpdataState,
    check_cfl,
    random_state,
    reference_run,
    safe_courant_scale,
    uniform_velocity,
)

SHAPE = (12, 10, 8)


class TestCheckCfl:
    def test_random_states_are_stable_by_construction(self):
        report = check_cfl(random_state(SHAPE, seed=1))
        assert report.stable
        assert report.violating_cells == 0

    def test_uniform_translation_ratio_exact(self):
        u1, u2, u3 = uniform_velocity(SHAPE, (0.3, 0.0, 0.0))
        state = MpdataState(
            np.ones(SHAPE), u1, u2, u3, np.ones(SHAPE)
        )
        report = check_cfl(state)
        # Uniform positive u1: one outgoing face per cell at C = 0.3.
        assert report.worst_ratio == pytest.approx(0.3)

    def test_divergent_flow_counts_both_faces(self):
        """A cell with outflow through opposite faces pays for both."""
        u1 = np.zeros(SHAPE)
        u1[5, :, :] = -0.3  # lower face of cell 5 flows out (down)
        u1[6, :, :] = 0.4  # upper face of cell 5 flows out (up)
        state = MpdataState(
            np.ones(SHAPE), u1, np.zeros(SHAPE), np.zeros(SHAPE),
            np.ones(SHAPE),
        )
        report = check_cfl(state)
        assert report.worst_ratio == pytest.approx(0.7)
        assert report.worst_cell[0] == 5

    def test_low_density_tightens_the_bound(self):
        u1, u2, u3 = uniform_velocity(SHAPE, (0.3, 0.0, 0.0))
        h = np.ones(SHAPE)
        h[3, 3, 3] = 0.5
        state = MpdataState(np.ones(SHAPE), u1, u2, u3, h)
        assert check_cfl(state).worst_ratio == pytest.approx(0.6)

    def test_violation_detected_and_predicts_blowup(self):
        u1, u2, u3 = uniform_velocity(SHAPE, (0.45, 0.45, 0.45))
        h = np.full(SHAPE, 0.8)
        rng = np.random.default_rng(0)
        state = MpdataState(rng.random(SHAPE), u1, u2, u3, h)
        report = check_cfl(state)
        assert not report.stable
        assert "UNSTABLE" in str(report)
        # And indeed the scheme loses positivity on such a state.
        out = reference_run(state, 5)
        assert out.min() < 0.0 or not np.isfinite(out).all()


class TestSafeScale:
    def test_scaling_restores_stability(self):
        u1, u2, u3 = uniform_velocity(SHAPE, (0.45, 0.45, 0.45))
        state = MpdataState(
            np.ones(SHAPE), u1, u2, u3, np.full(SHAPE, 0.8)
        )
        scale = safe_courant_scale(state)
        assert scale < 1.0
        rescaled = MpdataState(
            state.x, scale * u1, scale * u2, scale * u3, state.h
        )
        assert check_cfl(rescaled).stable

    def test_zero_velocity_unbounded(self):
        state = MpdataState(
            np.ones(SHAPE), np.zeros(SHAPE), np.zeros(SHAPE),
            np.zeros(SHAPE), np.ones(SHAPE),
        )
        assert safe_courant_scale(state) == float("inf")

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            safe_courant_scale(random_state(SHAPE, seed=2), margin=1.5)

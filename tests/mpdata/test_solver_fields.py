"""Tests for the solver driver and workload generators."""

import numpy as np
import pytest

from repro.mpdata import (
    GhostSpec,
    MpdataSolver,
    MpdataState,
    cone,
    gaussian_blob,
    max_courant,
    mpdata_program,
    random_state,
    rotation_velocity,
    translation_state,
    uniform_velocity,
    upwind_program,
)


class TestGhostSpec:
    def test_mpdata_ghosts(self):
        spec = GhostSpec.for_program(mpdata_program(), (32, 32, 16))
        assert spec.lo == (3, 3, 3)
        assert spec.hi == (3, 3, 3)

    def test_upwind_ghosts(self):
        spec = GhostSpec.for_program(upwind_program(), (16, 16, 8))
        assert spec.lo == (1, 1, 1)
        assert spec.hi == (1, 1, 1)


class TestSolver:
    def test_grid_smaller_than_halo_rejected(self):
        with pytest.raises(ValueError, match="halo"):
            MpdataSolver((2, 16, 16))

    def test_shape_mismatch_rejected(self):
        solver = MpdataSolver((8, 8, 8))
        state = random_state((10, 8, 8), seed=0)
        with pytest.raises(ValueError, match="expects"):
            solver.step(state)

    def test_negative_steps_rejected(self):
        solver = MpdataSolver((8, 8, 8))
        with pytest.raises(ValueError):
            solver.run(random_state((8, 8, 8), seed=0), -2)

    def test_open_boundary_runs(self):
        shape = (12, 10, 8)
        solver = MpdataSolver(shape, boundary="open")
        out = solver.run(random_state(shape, seed=1), 3)
        assert out.shape == shape
        assert np.isfinite(out).all()
        assert out.min() >= 0.0

    def test_open_boundary_differs_from_periodic(self):
        shape = (12, 10, 8)
        state = translation_state(shape, courant=(0.3, 0.0, 0.0), sigma=2.0)
        periodic = MpdataSolver(shape).run(state, 5)
        open_bc = MpdataSolver(shape, boundary="open").run(state, 5)
        assert not np.array_equal(periodic, open_bc)


class TestGenerators:
    def test_gaussian_blob_peak_at_centre(self):
        blob = gaussian_blob((16, 16, 16), sigma=2.0)
        assert blob.max() == blob[8, 8, 8]
        assert blob.min() >= 0.0

    def test_cone_support_radius(self):
        field = cone((32, 32, 8), centre=(16, 16, 4), radius=5.0, height=2.0)
        assert field.max() <= 2.0
        assert field[0, 0, 0] == 0.0

    def test_uniform_velocity_values(self):
        u1, u2, u3 = uniform_velocity((4, 4, 4), (0.1, -0.2, 0.3))
        assert np.all(u1 == 0.1) and np.all(u2 == -0.2) and np.all(u3 == 0.3)

    def test_rotation_velocity_divergence_free(self):
        """Discrete divergence of the face velocities vanishes cell-wise."""
        u1, u2, u3 = rotation_velocity((16, 16, 4), omega=0.05)
        div = (
            np.roll(u1, -1, axis=0) - u1
            + np.roll(u2, -1, axis=1) - u2
            + np.roll(u3, -1, axis=2) - u3
        )
        np.testing.assert_allclose(div, 0.0, atol=1e-12)

    def test_max_courant(self):
        u1, u2, u3 = uniform_velocity((4, 4, 4), (0.1, -0.4, 0.2))
        assert max_courant(u1, u2, u3) == pytest.approx(0.4)

    def test_random_state_is_cfl_safe(self):
        state = random_state((8, 8, 8), seed=42)
        c = max_courant(state.u1, state.u2, state.u3)
        assert 6.0 * c < state.h.min()

    def test_random_state_reproducible(self):
        a = random_state((6, 6, 6), seed=7)
        b = random_state((6, 6, 6), seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.u2, b.u2)

    def test_validate_catches_shape_mismatch(self):
        state = MpdataState(
            np.zeros((4, 4, 4)),
            np.zeros((4, 4, 4)),
            np.zeros((4, 4, 3)),
            np.zeros((4, 4, 4)),
            np.ones((4, 4, 4)),
        )
        with pytest.raises(ValueError, match="u2"):
            state.validate()

"""Tests for the absorbing-layer (sponge) composition."""

import numpy as np
import pytest

from repro.mpdata import (
    MpdataSolver,
    advection_sponge_program,
    gaussian_blob,
    mpdata_program,
    random_state,
    sponge_coefficient,
    uniform_velocity,
)
from repro.runtime import PartitionedRunner
from repro.stencil import lint_program, program_halo_depth

SHAPE = (32, 12, 8)


def _arrays(state, tau, x_ref):
    return {
        "x": state.x, "u1": state.u1, "u2": state.u2, "u3": state.u3,
        "h": state.h, "tau": tau, "x_ref": x_ref,
    }


class TestSpongeCoefficient:
    def test_interior_is_exactly_zero(self):
        tau = sponge_coefficient(SHAPE, width=6, strength=0.4)
        assert tau[6:-6].max() == 0.0

    def test_boundary_reaches_strength(self):
        tau = sponge_coefficient(SHAPE, width=6, strength=0.4)
        assert tau[0].max() == pytest.approx(0.4)
        assert tau[-1].max() == pytest.approx(0.4)

    def test_monotone_ramp(self):
        tau = sponge_coefficient(SHAPE, width=6, strength=0.4)
        edge = tau[:6, 0, 0]
        assert all(a >= b for a, b in zip(edge, edge[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            sponge_coefficient(SHAPE, width=0)
        with pytest.raises(ValueError):
            sponge_coefficient(SHAPE, width=20)  # zones would overlap
        with pytest.raises(ValueError):
            sponge_coefficient(SHAPE, width=4, strength=1.5)


class TestSpongeProgram:
    def test_structure(self):
        program = advection_sponge_program()
        assert len(program.stages) == 18
        assert lint_program(program) == []
        inputs = {f.name for f in program.input_fields}
        assert {"tau", "x_ref"} <= inputs

    def test_sponge_adds_no_halo(self):
        assert program_halo_depth(advection_sponge_program()) == (
            program_halo_depth(mpdata_program())
        )

    def test_zero_tau_equals_plain_mpdata(self):
        state = random_state(SHAPE, seed=1)
        runner = PartitionedRunner(advection_sponge_program(), SHAPE)
        out = runner.step(
            _arrays(state, np.zeros(SHAPE), np.zeros(SHAPE))
        )
        plain = MpdataSolver(SHAPE).step(state)
        np.testing.assert_array_equal(out, plain)

    def test_full_tau_pins_to_reference(self):
        state = random_state(SHAPE, seed=2)
        reference = np.full(SHAPE, 0.25)
        runner = PartitionedRunner(advection_sponge_program(), SHAPE)
        out = runner.step(_arrays(state, np.ones(SHAPE), reference))
        np.testing.assert_allclose(out, reference, atol=1e-14)

    def test_absorbs_an_outgoing_blob(self):
        """A blob advected into the sponge loses mass there instead of
        wrapping around the periodic boundary."""
        x = gaussian_blob(SHAPE, centre=(22.0, 6.0, 4.0), sigma=2.5)
        u1, u2, u3 = uniform_velocity(SHAPE, (0.3, 0.0, 0.0))
        h = np.ones(SHAPE)
        tau = sponge_coefficient(SHAPE, width=8, strength=0.5)
        runner = PartitionedRunner(advection_sponge_program(), SHAPE)
        arrays = {
            "x": x, "u1": u1, "u2": u2, "u3": u3, "h": h,
            "tau": tau, "x_ref": np.zeros(SHAPE),
        }
        field = x
        masses = []
        for _ in range(25):
            arrays["x"] = field
            field = runner.step(arrays)
            masses.append(field.sum())
        assert field.sum() < 0.3 * x.sum()  # most mass absorbed
        assert field.min() >= -1e-12
        assert all(a >= b for a, b in zip(masses, masses[1:]))  # monotone

    def test_islands_bit_exact(self):
        state = random_state(SHAPE, seed=3)
        tau = sponge_coefficient(SHAPE, width=5, strength=0.3)
        arrays = _arrays(state, tau, np.zeros(SHAPE))
        program = advection_sponge_program()
        whole = PartitionedRunner(program, SHAPE, islands=1).step(arrays)
        split = PartitionedRunner(program, SHAPE, islands=4).step(arrays)
        np.testing.assert_array_equal(whole, split)

"""Numerical-behaviour tests on the NumPy reference MPDATA."""

import numpy as np
import pytest

from repro.mpdata import (
    MpdataState,
    gaussian_blob,
    random_state,
    reference_run,
    reference_step,
    reference_upwind_step,
    rotation_state,
    uniform_velocity,
)


@pytest.fixture()
def shape():
    return (16, 12, 8)


class TestUpwind:
    def test_unit_courant_shifts_exactly(self, shape):
        """With C = 1 along one axis and h = 1 the donor-cell update is an
        exact one-cell shift — a classic sanity check."""
        rng = np.random.default_rng(0)
        x = rng.random(shape)
        u1, u2, u3 = uniform_velocity(shape, (1.0, 0.0, 0.0))
        state = MpdataState(x, u1, u2, u3, np.ones(shape))
        out = reference_upwind_step(state)
        np.testing.assert_allclose(out, np.roll(x, 1, axis=0), atol=1e-14)

    def test_zero_velocity_is_identity(self, shape):
        rng = np.random.default_rng(1)
        x = rng.random(shape)
        u1, u2, u3 = uniform_velocity(shape, (0.0, 0.0, 0.0))
        state = MpdataState(x, u1, u2, u3, np.ones(shape))
        np.testing.assert_array_equal(reference_upwind_step(state), x)

    def test_conserves_mass(self, shape):
        state = random_state(shape, seed=2)
        out = reference_upwind_step(state)
        assert np.isclose(
            (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-12
        )


class TestFullStep:
    def test_conserves_mass(self, shape):
        state = random_state(shape, seed=3)
        out = reference_step(state)
        assert np.isclose(
            (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-12
        )

    def test_preserves_positivity(self, shape):
        state = random_state(shape, seed=4)
        x = state.x
        for _ in range(5):
            x = reference_step(
                MpdataState(x, state.u1, state.u2, state.u3, state.h)
            )
            assert x.min() >= 0.0

    def test_nonoscillatory_bounds(self, shape):
        """The FCT guarantee, pointwise: every new value stays within the
        7-point local extrema of the old field and its upwind update."""
        state = random_state(shape, seed=5)
        out = reference_step(state)
        x_ant = reference_upwind_step(state)
        mx = np.maximum(state.x, x_ant)
        mn = np.minimum(state.x, x_ant)
        for field in (state.x, x_ant):
            for axis in range(3):
                for shift in (1, -1):
                    rolled = np.roll(field, shift, axis)
                    mx = np.maximum(mx, rolled)
                    mn = np.minimum(mn, rolled)
        assert (out <= mx + 1e-12).all()
        assert (out >= mn - 1e-12).all()

    def test_constant_preserved_under_solid_rotation(self):
        rot = rotation_state((20, 20, 4), omega=0.02)
        const = MpdataState(
            np.full((20, 20, 4), 3.0), rot.u1, rot.u2, rot.u3, rot.h
        )
        out = reference_run(const, 3)
        np.testing.assert_allclose(out, 3.0, atol=1e-12)

    def test_second_order_beats_upwind_on_translation(self):
        """The corrective pass must reduce diffusion versus pure upwind:
        after a few steps the blob's peak stays higher."""
        shape = (32, 8, 4)
        x = gaussian_blob(shape, sigma=3.0)
        u1, u2, u3 = uniform_velocity(shape, (0.25, 0.0, 0.0))
        h = np.ones(shape)
        xu = x.copy()
        xm = x.copy()
        for _ in range(8):
            xu = reference_upwind_step(MpdataState(xu, u1, u2, u3, h))
            xm = reference_step(MpdataState(xm, u1, u2, u3, h))
        assert xm.max() > xu.max()

    def test_mismatched_shapes_rejected(self, shape):
        state = random_state(shape, seed=6)
        bad = MpdataState(
            state.x, state.u1[:4], state.u2, state.u3, state.h
        )
        with pytest.raises(ValueError, match="u1"):
            reference_step(bad)


class TestRun:
    def test_zero_steps_returns_input(self, shape):
        state = random_state(shape, seed=7)
        np.testing.assert_array_equal(reference_run(state, 0), state.x)

    def test_negative_steps_rejected(self, shape):
        with pytest.raises(ValueError):
            reference_run(random_state(shape, seed=8), -1)

    def test_iterates_step(self, shape):
        state = random_state(shape, seed=9)
        two = reference_run(state, 2)
        one = reference_step(state)
        again = reference_step(
            MpdataState(one, state.u1, state.u2, state.u3, state.h)
        )
        np.testing.assert_array_equal(two, again)

"""Tests for run checkpointing."""

import numpy as np
import pytest

from repro.mpdata import (
    Checkpoint,
    MpdataSolver,
    MpdataState,
    load_checkpoint,
    random_state,
    save_checkpoint,
)

SHAPE = (12, 10, 8)


class TestRoundTrip:
    def test_arrays_bit_exact(self, tmp_path):
        state = random_state(SHAPE, seed=3)
        path = save_checkpoint(tmp_path / "run", state, step=17)
        restored = load_checkpoint(path)
        assert restored.step == 17
        for name in ("x", "u1", "u2", "u3", "h"):
            np.testing.assert_array_equal(
                getattr(restored.state, name), getattr(state, name)
            )

    def test_metadata_preserved(self, tmp_path):
        state = random_state(SHAPE, seed=4)
        path = save_checkpoint(
            tmp_path / "run.npz", state, step=5,
            metadata={"experiment": "table3", "variant": "A"},
        )
        restored = load_checkpoint(path)
        assert restored.metadata == {"experiment": "table3", "variant": "A"}

    def test_suffix_appended(self, tmp_path):
        state = random_state(SHAPE, seed=5)
        path = save_checkpoint(tmp_path / "plain", state, step=0)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_split_run_equals_unbroken_run(self, tmp_path):
        """Resume is exact: 3 + 3 steps through a checkpoint equals 6."""
        state = random_state(SHAPE, seed=6)
        solver = MpdataSolver(SHAPE)
        unbroken = solver.run(state, 6)

        first_half = solver.run(state, 3)
        path = save_checkpoint(
            tmp_path / "half",
            MpdataState(first_half, state.u1, state.u2, state.u3, state.h),
            step=3,
        )
        restored = load_checkpoint(path)
        resumed = solver.run(restored.state, 3)
        np.testing.assert_array_equal(resumed, unbroken)


class TestAtomicWrite:
    """A crash mid-write must never leave a truncated .npz behind."""

    def _crash_mid_savez(self, monkeypatch):
        import repro.mpdata.checkpoint as checkpoint_module

        real_savez = np.savez

        def dying_savez(target, **arrays):
            # Write a real partial archive, then die — a crash (or a
            # full disk, or a SIGKILL) halfway through serialization.
            partial = {name: arrays[name] for name in list(arrays)[:2]}
            real_savez(target, **partial)
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(checkpoint_module.np, "savez", dying_savez)

    def test_partial_file_never_observed_at_target(self, tmp_path, monkeypatch):
        state = random_state(SHAPE, seed=9)
        self._crash_mid_savez(monkeypatch)
        with pytest.raises(OSError, match="simulated crash"):
            save_checkpoint(tmp_path / "run", state, step=3)
        # Neither a truncated checkpoint nor temp litter survives.
        assert list(tmp_path.iterdir()) == []

    def test_failed_overwrite_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        state = random_state(SHAPE, seed=10)
        path = save_checkpoint(tmp_path / "run", state, step=3)
        later = random_state(SHAPE, seed=11)
        self._crash_mid_savez(monkeypatch)
        with pytest.raises(OSError, match="simulated crash"):
            save_checkpoint(path, later, step=6)
        restored = load_checkpoint(path)  # the old checkpoint, intact
        assert restored.step == 3
        np.testing.assert_array_equal(restored.state.x, state.x)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        state = random_state(SHAPE, seed=12)
        save_checkpoint(tmp_path / "run", state, step=1)
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["run.npz"]


class TestValidation:
    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(random_state(SHAPE, seed=7), step=-1, metadata={})

    def test_corrupt_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, something=np.zeros(3))
        with pytest.raises(ValueError, match="not an MPDATA checkpoint"):
            load_checkpoint(bogus)

    def test_wrong_version_rejected(self, tmp_path):
        import json

        state = random_state(SHAPE, seed=8)
        path = tmp_path / "old.npz"
        header = json.dumps(
            {"format_version": 99, "step": 0, "metadata": {}}
        )
        np.savez(
            path,
            header=np.frombuffer(header.encode(), dtype=np.uint8),
            x=state.x, u1=state.u1, u2=state.u2, u3=state.u3, h=state.h,
        )
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

"""Tests for ghost-cell extension and boundary filling."""

import numpy as np
import pytest

from repro.mpdata import extend_array, extended_box, fill_ghosts
from repro.stencil import Box


@pytest.fixture()
def interior():
    rng = np.random.default_rng(0)
    return rng.random((5, 4, 3))


class TestExtendedBox:
    def test_anchoring(self):
        box = extended_box((4, 4, 4), (1, 2, 0), (3, 0, 1))
        assert box == Box((-1, -2, 0), (7, 4, 5))


class TestPeriodic:
    def test_wraps_each_axis(self, interior):
        region = extend_array(interior, (2, 1, 1), (2, 1, 1), "periodic")
        data = region.data
        np.testing.assert_array_equal(data[0:2, 1:5, 1:4], interior[3:5])
        np.testing.assert_array_equal(data[7:9, 1:5, 1:4], interior[0:2])
        np.testing.assert_array_equal(data[2:7, 0, 1:4], interior[:, 3, :])
        np.testing.assert_array_equal(data[2:7, 5, 1:4], interior[:, 0, :])

    def test_corners_consistent(self, interior):
        """Corner ghosts must equal the doubly-wrapped interior values."""
        region = extend_array(interior, (1, 1, 1), (1, 1, 1), "periodic")
        data = region.data
        assert data[0, 0, 0] == interior[-1, -1, -1]
        assert data[-1, -1, -1] == interior[0, 0, 0]
        assert data[0, -1, 0] == interior[-1, 0, -1]

    def test_matches_np_pad_wrap(self, interior):
        region = extend_array(interior, (2, 2, 1), (2, 2, 1), "periodic")
        expected = np.pad(interior, ((2, 2), (2, 2), (1, 1)), mode="wrap")
        np.testing.assert_array_equal(region.data, expected)

    def test_ghost_wider_than_interior_rejected(self):
        with pytest.raises(ValueError, match="periodic"):
            extend_array(np.zeros((2, 4, 4)), (3, 0, 0), (0, 0, 0), "periodic")


class TestOpen:
    def test_matches_np_pad_edge(self, interior):
        region = extend_array(interior, (2, 1, 2), (1, 2, 1), "open")
        expected = np.pad(interior, ((2, 1), (1, 2), (2, 1)), mode="edge")
        np.testing.assert_array_equal(region.data, expected)


class TestErrors:
    def test_unknown_mode_rejected(self, interior):
        with pytest.raises(ValueError, match="unknown boundary"):
            extend_array(interior, (1, 1, 1), (1, 1, 1), "reflect")

    def test_fill_ghosts_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown boundary"):
            fill_ghosts(np.zeros((4, 4, 4)), (1, 1, 1), (1, 1, 1), "huh")

    def test_no_interior_rejected(self):
        with pytest.raises(ValueError, match="no interior"):
            fill_ghosts(np.zeros((2, 4, 4)), (1, 0, 0), (1, 0, 0), "open")

    def test_region_anchor(self, interior):
        region = extend_array(interior, (1, 2, 3), (0, 0, 0), "open")
        assert region.box.lo == (-1, -2, -3)
        assert region.box.hi == (5, 4, 3)

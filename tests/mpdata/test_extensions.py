"""Tests for the composed advection+physics programs."""

import numpy as np
import pytest

from repro.core import Variant
from repro.mpdata import (
    MpdataSolver,
    advection_decay_program,
    advection_diffusion_program,
    mpdata_program,
    random_state,
    reference_step,
)
from repro.runtime import MpdataIslandSolver
from repro.stencil import lint_program, program_halo_depth

SHAPE = (14, 12, 8)


@pytest.fixture()
def state():
    return random_state(SHAPE, seed=77)


class TestStructure:
    def test_diffusion_adds_one_stage(self):
        base = mpdata_program()
        composed = advection_diffusion_program()
        assert len(composed.stages) == len(base.stages) + 1
        assert lint_program(composed) == []

    def test_diffusion_deepens_halo_by_one(self):
        base_lo, base_hi = program_halo_depth(mpdata_program())
        lo, hi = program_halo_depth(advection_diffusion_program())
        assert lo == tuple(b + 1 for b in base_lo)
        assert hi == tuple(b + 1 for b in base_hi)

    def test_decay_adds_no_halo(self):
        base = program_halo_depth(mpdata_program())
        composed = program_halo_depth(advection_decay_program())
        assert composed == base

    def test_nu_validation(self):
        with pytest.raises(ValueError):
            advection_diffusion_program(nu=0.3)
        with pytest.raises(ValueError):
            advection_diffusion_program(nu=-0.01)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            advection_decay_program(rate=1.0)

    def test_variants_compose(self):
        composed = advection_diffusion_program(nu=0.02, iord=3, nonosc=False)
        assert len(composed.stages) == 12 + 1


class TestNumerics:
    def test_diffusion_conserves_weighted_mass(self, state):
        solver = MpdataSolver(SHAPE, program=advection_diffusion_program())
        out = solver.run(state, 3)
        np.testing.assert_allclose(
            (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-12
        )

    def test_diffusion_smooths(self, state):
        plain = MpdataSolver(SHAPE).run(state, 3)
        diffused = MpdataSolver(
            SHAPE, program=advection_diffusion_program(nu=0.1)
        ).run(state, 3)
        assert diffused.var() < plain.var()

    def test_zero_nu_equals_plain_mpdata(self, state):
        plain = MpdataSolver(SHAPE).step(state)
        composed = MpdataSolver(
            SHAPE, program=advection_diffusion_program(nu=0.0)
        ).step(state)
        np.testing.assert_allclose(composed, plain, atol=1e-14)

    def test_decay_scales_the_step(self, state):
        out = MpdataSolver(
            SHAPE, program=advection_decay_program(rate=0.25)
        ).step(state)
        np.testing.assert_allclose(
            out, 0.75 * reference_step(state), atol=1e-13
        )

    def test_islands_bit_exact_for_composites(self, state):
        for program in (
            advection_diffusion_program(),
            advection_decay_program(),
        ):
            whole = MpdataSolver(SHAPE, program=program).step(state)
            split = MpdataIslandSolver(
                SHAPE, 3, variant=Variant.B, program=program
            ).step(state)
            np.testing.assert_array_equal(whole, split)

    def test_diffusion_raises_redundancy(self):
        """One extra halo layer means more extra elements per cut."""
        from repro.core import partition_domain, redundancy_report
        from repro.stencil import full_box

        domain = full_box((128, 64, 16))
        partition = partition_domain(domain, 2, Variant.A)
        base = redundancy_report(mpdata_program(), partition)
        composed = redundancy_report(advection_diffusion_program(), partition)
        assert composed.extra_points > base.extra_points

"""Tests for the two-level islands plan builder."""

import pytest

from repro.machine import simulate, sgi_uv2000, uv2000_costs
from repro.sched import build_islands_plan, build_two_level_plan

SHAPE = (1024, 512, 64)
STEPS = 50


@pytest.fixture(scope="module")
def env():
    return sgi_uv2000(), uv2000_costs()


def _seconds(plan):
    return simulate(plan).total_seconds


class TestTwoLevelPlan:
    def test_inner_grid_capacity_checked(self, mpdata, env):
        machine, costs = env
        with pytest.raises(ValueError, match="cores"):
            build_two_level_plan(
                mpdata, SHAPE, STEPS, 14, (4, 4), machine, costs
            )

    def test_steps_and_islands_validated(self, mpdata, env):
        machine, costs = env
        with pytest.raises(ValueError):
            build_two_level_plan(mpdata, SHAPE, 0, 14, (1, 8), machine, costs)
        with pytest.raises(ValueError):
            build_two_level_plan(mpdata, SHAPE, STEPS, 15, (1, 8), machine, costs)

    def test_trivial_inner_beats_plain_islands(self, mpdata, env):
        """inner = (1,1) removes the work-team penalty with zero extra
        redundancy — the model's upper bound on the future-work gain."""
        machine, costs = env
        plain = _seconds(
            build_islands_plan(mpdata, SHAPE, STEPS, 14, machine, costs)
        )
        nested = _seconds(
            build_two_level_plan(
                mpdata, SHAPE, STEPS, 14, (1, 1), machine, costs
            )
        )
        assert nested < plain

    def test_thin_i_slabs_lose(self, mpdata, env):
        """8x1 core islands pay ~21 % redundancy — more than the rate gain."""
        machine, costs = env
        along_i = _seconds(
            build_two_level_plan(
                mpdata, SHAPE, STEPS, 14, (8, 1), machine, costs
            )
        )
        along_j = _seconds(
            build_two_level_plan(
                mpdata, SHAPE, STEPS, 14, (1, 8), machine, costs
            )
        )
        assert along_j < along_i

    def test_flops_include_both_levels_of_redundancy(self, mpdata, env):
        machine, costs = env
        flat = build_two_level_plan(
            mpdata, SHAPE, STEPS, 14, (1, 1), machine, costs
        )
        nested = build_two_level_plan(
            mpdata, SHAPE, STEPS, 14, (2, 4), machine, costs
        )
        assert nested.total_flops > flat.total_flops

    def test_study_reports_best_grid(self):
        from repro.experiments.future_work import run_two_level_study

        study = run_two_level_study(
            outer=4, shape=(256, 128, 16), steps=10
        )
        assert study.best_grid() == "none"  # upper bound always wins
        by_grid = {row[0]: row[5] for row in study.rows}
        assert by_grid["1x8"] > by_grid["8x1"]  # j-split beats i-split

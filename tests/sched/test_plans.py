"""Tests for the strategy-to-plan compilers and their simulated behaviour.

These tests pin the *qualitative* shape the paper reports (who wins where)
plus the calibration anchors; exact-cell comparisons live in the
experiments tests.
"""

import pytest

from repro.core import Variant
from repro.machine import simulate, sgi_uv2000, uv2000_costs
from repro.sched import build_fused_plan, build_islands_plan, build_original_plan

SHAPE = (1024, 512, 64)
STEPS = 50


@pytest.fixture(scope="module")
def machine():
    return sgi_uv2000()


@pytest.fixture(scope="module")
def costs():
    return uv2000_costs()


def _seconds(plan):
    return simulate(plan).total_seconds


class TestOriginal:
    def test_single_node_anchor(self, mpdata, machine, costs):
        t = _seconds(
            build_original_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        )
        assert t == pytest.approx(30.4, rel=0.01)

    def test_serial_equals_first_touch_on_one_node(self, mpdata, machine, costs):
        serial = _seconds(
            build_original_plan(
                mpdata, SHAPE, STEPS, 1, machine, costs, "serial"
            )
        )
        ft = _seconds(
            build_original_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        )
        assert serial == pytest.approx(ft, rel=1e-6)

    def test_serial_init_gets_slower_with_more_nodes(self, mpdata, machine, costs):
        times = [
            _seconds(
                build_original_plan(
                    mpdata, SHAPE, STEPS, p, machine, costs, "serial"
                )
            )
            for p in (1, 2, 4, 8, 14)
        ]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_first_touch_scales_down(self, mpdata, machine, costs):
        times = [
            _seconds(
                build_original_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            for p in (1, 2, 4, 8, 14)
        ]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_one_phase_per_stage(self, mpdata, machine, costs):
        plan = build_original_plan(mpdata, SHAPE, STEPS, 4, machine, costs)
        assert len(plan.phases) == 17
        assert all(phase.repeat == STEPS for phase in plan.phases)

    def test_invalid_arguments(self, mpdata, machine, costs):
        with pytest.raises(ValueError, match="placement"):
            build_original_plan(
                mpdata, SHAPE, STEPS, 1, machine, costs, "numad"
            )
        with pytest.raises(ValueError, match="nodes"):
            build_original_plan(mpdata, SHAPE, STEPS, 15, machine, costs)
        with pytest.raises(ValueError, match="steps"):
            build_original_plan(mpdata, SHAPE, 0, 1, machine, costs)


class TestFused:
    def test_single_node_anchor(self, mpdata, machine, costs):
        t = _seconds(build_fused_plan(mpdata, SHAPE, STEPS, 1, machine, costs))
        assert t == pytest.approx(9.0, rel=0.01)

    def test_single_node_beats_original(self, mpdata, machine, costs):
        fused = _seconds(
            build_fused_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        )
        original = _seconds(
            build_original_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        )
        assert original / fused > 3.0  # paper: 3.37x

    def test_original_overtakes_fused_at_moderate_p(self, mpdata, machine, costs):
        """The paper's key negative result: pure (3+1)D loses to the
        original version from P ~ 4-5 onward."""
        for p in (8, 14):
            fused = _seconds(
                build_fused_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            original = _seconds(
                build_original_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            assert original < fused

    def test_smaller_cache_budget_is_slower(self, mpdata, machine, costs):
        big = _seconds(
            build_fused_plan(
                mpdata, SHAPE, STEPS, 8, machine, costs,
                cache_bytes=16 * 1024 * 1024,
            )
        )
        small = _seconds(
            build_fused_plan(
                mpdata, SHAPE, STEPS, 8, machine, costs,
                cache_bytes=2 * 1024 * 1024,
            )
        )
        assert small > big


class TestIslands:
    def test_single_island_equals_fused(self, mpdata, machine, costs):
        islands = _seconds(
            build_islands_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        )
        fused = _seconds(
            build_fused_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        )
        assert islands == pytest.approx(fused, rel=0.01)

    def test_beats_both_baselines_everywhere(self, mpdata, machine, costs):
        for p in (2, 4, 8, 14):
            islands = _seconds(
                build_islands_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            fused = _seconds(
                build_fused_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            original = _seconds(
                build_original_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            assert islands < fused
            assert islands < original

    def test_headline_speedup_over_fused_at_14(self, mpdata, machine, costs):
        islands = _seconds(
            build_islands_plan(mpdata, SHAPE, STEPS, 14, machine, costs)
        )
        fused = _seconds(
            build_fused_plan(mpdata, SHAPE, STEPS, 14, machine, costs)
        )
        assert fused / islands > 9.0  # paper: "more than 10 times"

    def test_overall_speedup_roughly_constant(self, mpdata, machine, costs):
        """S_ov stays near 2.8 across P (paper: 2.74..2.96)."""
        ratios = []
        for p in (2, 6, 10, 14):
            islands = _seconds(
                build_islands_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            original = _seconds(
                build_original_plan(mpdata, SHAPE, STEPS, p, machine, costs)
            )
            ratios.append(original / islands)
        assert all(2.4 < r < 3.2 for r in ratios)

    def test_variant_a_beats_variant_b(self, mpdata, machine, costs):
        a = _seconds(
            build_islands_plan(
                mpdata, SHAPE, STEPS, 8, machine, costs, variant=Variant.A
            )
        )
        b = _seconds(
            build_islands_plan(
                mpdata, SHAPE, STEPS, 8, machine, costs, variant=Variant.B
            )
        )
        assert a <= b

    def test_flops_include_redundancy(self, mpdata, machine, costs):
        one = build_islands_plan(mpdata, SHAPE, STEPS, 1, machine, costs)
        many = build_islands_plan(mpdata, SHAPE, STEPS, 14, machine, costs)
        assert many.total_flops > one.total_flops

    def test_explicit_placement_length_checked(self, mpdata, machine, costs):
        with pytest.raises(ValueError, match="placement"):
            build_islands_plan(
                mpdata, SHAPE, STEPS, 4, machine, costs, placement=[0, 1]
            )

    def test_single_step_phase(self, mpdata, machine, costs):
        plan = build_islands_plan(mpdata, SHAPE, STEPS, 4, machine, costs)
        assert len(plan.phases) == 1
        assert plan.phases[0].repeat == STEPS
        assert plan.phases[0].barrier_nodes == 4

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpdata import mpdata_program, random_state, upwind_program
from repro.stencil import (
    Access,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    full_box,
)


@pytest.fixture(scope="session")
def mpdata():
    """The full 17-stage MPDATA program (cached for the session)."""
    return mpdata_program()


@pytest.fixture(scope="session")
def upwind():
    """The 4-stage upwind sub-program."""
    return upwind_program()


@pytest.fixture()
def small_shape():
    """A grid large enough for MPDATA's halo (>= 2x the depth of 3)."""
    return (16, 12, 8)


@pytest.fixture()
def small_state(small_shape):
    """A CFL-stable random MPDATA state on the small grid."""
    return random_state(small_shape, seed=1234)


@pytest.fixture(scope="session")
def chain_program():
    """A three-stage 1D chain mirroring Fig. 1 of the paper.

    stage1: a[i] = x[i-1] + x[i+1]
    stage2: b[i] = a[i-1] + a[i+1]
    stage3: y[i] = b[i-1] + b[i+1]

    Transitive halo of y on x is exactly 3 per side in i.
    """
    stages = (
        Stage("s1", "a", Access("x", (-1, 0, 0)) + Access("x", (1, 0, 0))),
        Stage("s2", "b", Access("a", (-1, 0, 0)) + Access("a", (1, 0, 0))),
        Stage("s3", "y", Access("b", (-1, 0, 0)) + Access("b", (1, 0, 0))),
    )
    return StencilProgram.build(
        "chain3",
        inputs=(Field("x", FieldRole.INPUT),),
        stages=stages,
        outputs=("y",),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def paper_domain():
    return full_box((1024, 512, 64))

"""Tests for numerical guards and checkpointed rollback-and-replay.

The acceptance bar: a fault-riddled run must finish with output
bit-identical to the fault-free run, and an interrupted run must resume
from its last checkpoint to the same final bits.
"""

import numpy as np
import pytest

from repro.mpdata import MpdataSolver, load_checkpoint, random_state
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    MpdataIslandSolver,
    NumericalHealthError,
    RecoveryPolicy,
    UnrecoverableRunError,
    check_step_health,
    run_with_recovery,
)

SHAPE = (16, 12, 8)


@pytest.fixture()
def state():
    return random_state(SHAPE, seed=33)


class TestCheckStepHealth:
    def test_clean_field_passes(self):
        assert check_step_health(np.ones((4, 4))) is None

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_non_finite_detected(self, poison):
        x = np.ones((4, 4))
        x[2, 1] = poison
        assert check_step_health(x) == "non-finite value in field"

    def test_finite_check_can_be_disabled(self):
        x = np.full((4, 4), np.nan)
        assert check_step_health(x, check_finite=False) is None

    def test_mass_drift_guard(self):
        x = np.ones((4, 4))
        h = np.ones((4, 4))
        assert (
            check_step_health(x, h=h, initial_mass=16.0, mass_drift_limit=1e-9)
            is None
        )
        reason = check_step_health(
            x, h=h, initial_mass=15.0, mass_drift_limit=1e-9
        )
        assert reason is not None and "mass drift" in reason

    def test_mass_guard_requires_h_and_initial_mass(self):
        with pytest.raises(ValueError, match="requires"):
            check_step_health(np.ones(3), mass_drift_limit=1e-9)


class TestRecoveryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(checkpoint_every=0),
            dict(keep_last=-1),
            dict(max_rollbacks=-1),
            dict(mass_drift_limit=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)


class TestRollbackAndReplay:
    def test_corruption_rolled_back_bit_identical(self, state):
        expected = MpdataSolver(SHAPE).run(state, 8)
        injector = FaultInjector([FaultSpec("corrupt", island=1, step=5)])
        with MpdataIslandSolver(
            SHAPE, 3, reuse_output=True, fault_injector=injector,
        ) as solver:
            actual = solver.run(
                state, 8, recovery=RecoveryPolicy(checkpoint_every=3)
            )
            report = solver.last_recovery_report
        np.testing.assert_array_equal(actual, expected)
        assert report.guard_trips == 1
        assert report.rollbacks == 1
        # Corrupted at step 5 (0-based), last checkpoint after step 3:
        # steps 3..5 are replayed.
        assert report.replayed_steps == 2
        assert report.completed_steps == 8

    def test_exhausted_island_rolled_back(self, state):
        """A fault outliving the retry budget is caught one level up."""
        expected = MpdataSolver(SHAPE).run(state, 6)
        injector = FaultInjector(
            [FaultSpec("crash", island=0, step=4, attempts=2)]
        )
        with MpdataIslandSolver(
            SHAPE, 2, reuse_output=True,
            max_retries=1, fault_injector=injector,
        ) as solver:
            actual = solver.run(
                state, 6, recovery=RecoveryPolicy(checkpoint_every=2)
            )
            report = solver.last_recovery_report
        np.testing.assert_array_equal(actual, expected)
        assert report.fault_stats.islands_failed == 1
        assert report.rollbacks == 1

    def test_mass_drift_guard_trips_and_recovers(self, state):
        # An injected finite-but-wrong value slips past the NaN check;
        # the mass guard catches it.
        expected = MpdataSolver(SHAPE).run(state, 5)
        injector = FaultInjector(
            [FaultSpec("corrupt", island=0, step=2, value=1e9)]
        )
        with MpdataIslandSolver(
            SHAPE, 2, reuse_output=True, fault_injector=injector,
        ) as solver:
            actual = solver.run(
                state,
                5,
                recovery=RecoveryPolicy(
                    checkpoint_every=2, mass_drift_limit=1.0
                ),
            )
            report = solver.last_recovery_report
        np.testing.assert_array_equal(actual, expected)
        assert report.guard_trips == 1

    def test_rollback_budget_exhaustion_raises(self, state):
        injector = FaultInjector(
            [FaultSpec("crash", island=0, step=3, attempts=999)]
        )
        with MpdataIslandSolver(
            SHAPE, 2, reuse_output=True,
            max_retries=1, fault_injector=injector,
        ) as solver:
            with pytest.raises(UnrecoverableRunError) as excinfo:
                solver.run(
                    state,
                    6,
                    recovery=RecoveryPolicy(
                        checkpoint_every=2, max_rollbacks=2
                    ),
                )
            report = solver.last_recovery_report
        assert excinfo.value.failed_step == 3
        assert excinfo.value.checkpoint_step == 2
        assert report.rollbacks == 2
        assert report.completed_steps == 2  # the last good step

    def test_clean_run_reports_clean(self, state):
        with MpdataIslandSolver(SHAPE, 2, reuse_output=True) as solver:
            expected = MpdataSolver(SHAPE).run(state, 4)
            actual = solver.run(
                state, 4, recovery=RecoveryPolicy(checkpoint_every=2)
            )
            report = solver.last_recovery_report
        np.testing.assert_array_equal(actual, expected)
        assert report.clean
        assert "clean run" in report.render()

    def test_clean_run_with_guards_stays_allocation_free(self, state):
        """Guards and checkpoints never touch the runner's zero-alloc path."""
        with MpdataIslandSolver(
            SHAPE, 3, reuse_output=True, max_retries=2,
        ) as solver:
            solver.run(
                state, 5, recovery=RecoveryPolicy(checkpoint_every=2)
            )
            assert solver.last_step_stats.allocations == 0


class TestAcceptance50Steps:
    def test_faults_in_two_islands_per_step_bit_identical(self, state):
        """ISSUE acceptance: faults in <= 2 islands per step, 50 steps,
        final output bit-identical to the fault-free run."""
        steps = 50
        with MpdataIslandSolver(SHAPE, 4, reuse_output=True) as clean:
            expected = np.array(clean.run(state, steps), copy=True)

        specs = []
        for step in range(0, steps, 5):  # two faulted islands every 5 steps
            specs.append(FaultSpec("crash", island=step % 4, step=step))
            specs.append(
                FaultSpec("corrupt", island=(step + 2) % 4, step=step)
            )
        injector = FaultInjector(specs)
        with MpdataIslandSolver(
            SHAPE, 4, reuse_output=True,
            max_retries=2, fault_injector=injector,
        ) as solver:
            actual = solver.run(
                state,
                steps,
                recovery=RecoveryPolicy(
                    checkpoint_every=5, max_rollbacks=steps
                ),
            )
            report = solver.last_recovery_report
        np.testing.assert_array_equal(actual, expected)
        assert report.completed_steps == steps
        assert report.fault_stats.injected_crashes == 10
        assert report.fault_stats.injected_corruptions == 10
        assert report.fault_stats.retry_successes == 10
        assert report.guard_trips == 10


class TestCheckpointedCrashResume:
    """Satellite: kill a run mid-flight, resume from the last checkpoint,
    and land on bit-identical final state versus an unbroken run."""

    def test_resume_after_crash_is_bit_identical(self, state, tmp_path):
        steps = 20
        with MpdataIslandSolver(SHAPE, 3, reuse_output=True) as clean:
            unbroken = np.array(clean.run(state, steps), copy=True)

        # A persistent fault at step 13 kills the run (no retries, no
        # rollbacks): the process "dies" mid-flight.
        injector = FaultInjector(
            [FaultSpec("crash", island=1, step=13, attempts=999)]
        )
        with MpdataIslandSolver(
            SHAPE, 3, reuse_output=True, fault_injector=injector,
        ) as doomed:
            with pytest.raises(UnrecoverableRunError) as excinfo:
                doomed.run(
                    state,
                    steps,
                    recovery=RecoveryPolicy(
                        checkpoint_every=4,
                        checkpoint_dir=tmp_path,
                        max_rollbacks=0,
                    ),
                )
        assert excinfo.value.checkpoint_step == 12
        checkpoint = load_checkpoint(excinfo.value.checkpoint_path)
        assert checkpoint.step == 12

        # A fresh solver (fresh process, conceptually) resumes from disk.
        with MpdataIslandSolver(SHAPE, 3, reuse_output=True) as resumed:
            final = resumed.run(checkpoint.state, steps - checkpoint.step)
        np.testing.assert_array_equal(final, unbroken)

    def test_disk_checkpoints_pruned_to_keep_last(self, state, tmp_path):
        with MpdataIslandSolver(SHAPE, 2, reuse_output=True) as solver:
            solver.run(
                state,
                12,
                recovery=RecoveryPolicy(
                    checkpoint_every=2,
                    checkpoint_dir=tmp_path,
                    keep_last=2,
                ),
            )
            report = solver.last_recovery_report
        remaining = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert len(remaining) == 2
        assert report.checkpoints_written == 6  # 0, 2, 4, 6, 8, 10
        assert report.last_checkpoint_path.name in remaining


class TestRunWithRecoveryDirect:
    def test_rejects_negative_steps(self, state):
        with MpdataIslandSolver(SHAPE, 2) as solver:
            with pytest.raises(ValueError, match="non-negative"):
                run_with_recovery(solver, state, -1, RecoveryPolicy())

    def test_zero_steps_returns_initial_field(self, state):
        with MpdataIslandSolver(SHAPE, 2) as solver:
            final, report = run_with_recovery(
                solver, state, 0, RecoveryPolicy()
            )
        np.testing.assert_array_equal(final, state.x)
        assert report.completed_steps == 0
        assert report.clean

    def test_guard_trip_without_rollback_budget(self, state):
        injector = FaultInjector([FaultSpec("corrupt", island=0, step=1)])
        with MpdataIslandSolver(
            SHAPE, 2, reuse_output=True, fault_injector=injector,
        ) as solver:
            with pytest.raises(UnrecoverableRunError) as excinfo:
                solver.run(
                    state,
                    4,
                    recovery=RecoveryPolicy(max_rollbacks=0),
                )
        assert isinstance(excinfo.value.__cause__, NumericalHealthError)

"""Tests for the deadline-supervised worker pool.

Covers the supervision ladder end to end: deadline computation
(:class:`DeadlineClock` — explicit, adaptive EWMA, warm-up grace),
watchdog hang detection (a wedged worker is killed within the configured
deadline, respawned, and the island replayed bit-identically over 50
steps), the per-worker health ledger with quarantine and round-robin
island remapping onto survivors, degradation to serial-in-parent when no
worker survives, the bounded ``refresh``/``close`` paths (a SIGSTOPped
worker can no longer deadlock either), the capped and deterministically
jittered retry backoff, and the new config / CLI surface.
"""

import glob
import importlib.util
import os
import pathlib
import signal
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import _validate_engine_args, build_parser
from repro.mpdata import random_state
from repro.runtime import (
    DeadlineClock,
    EngineConfig,
    FaultStats,
    InMemorySink,
    MpdataIslandSolver,
    RecoveryPolicy,
    RecoveryReport,
    ResiliencePolicy,
    Telemetry,
)
from repro.runtime.procs import SEGMENT_PREFIX, live_segment_names

SHAPE = (16, 12, 8)


def _shm_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _trajectory(config, steps=50, islands=2, telemetry=None):
    state = random_state(SHAPE, seed=7)
    with MpdataIslandSolver(
        SHAPE, islands, config=config, telemetry=telemetry
    ) as solver:
        final = np.array(solver.run(state, steps), copy=True)
        stats = replace(solver.runner.fault_stats)
    return final, stats


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm clean of procs segments."""
    before = set(_shm_segments())
    yield
    leaked = set(_shm_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    assert not live_segment_names()


@pytest.fixture(scope="module")
def reference():
    final, _ = _trajectory(EngineConfig(backend="interpreter"))
    return final


class TestDeadlineClock:
    def test_explicit_deadline_wins(self):
        clock = DeadlineClock(2.5, 8.0)
        assert clock.current() == 2.5
        clock.observe(100.0)
        assert clock.current() == 2.5
        assert clock.current(fresh=True) == 2.5

    def test_unsupervised_when_both_none(self):
        clock = DeadlineClock(None, None)
        assert not clock.supervised
        assert clock.current() is None
        assert clock.current(fresh=True) is None

    def test_warmup_before_any_sample(self):
        clock = DeadlineClock(None, 8.0, warmup=60.0)
        assert clock.supervised
        assert clock.current() == 60.0

    def test_adaptive_tracks_ewma_with_floor(self):
        clock = DeadlineClock(None, 4.0, floor=1.0)
        clock.observe(0.01)
        # tiny durations hit the floor, not 0.04s
        assert clock.current() == 1.0
        clock = DeadlineClock(None, 4.0, floor=1.0)
        clock.observe(2.0)
        assert clock.current() == pytest.approx(8.0)

    def test_ewma_smooths(self):
        clock = DeadlineClock(None, 1.0, floor=0.0)
        clock.observe(1.0)
        clock.observe(3.0)  # ewma = 1 + 0.25 * 2 = 1.5
        assert clock.ewma == pytest.approx(1.5)

    def test_fresh_worker_gets_warmup_grace(self):
        clock = DeadlineClock(None, 8.0, warmup=60.0)
        clock.observe(0.01)
        assert clock.current(fresh=True) == 60.0
        assert clock.current(fresh=False) < 60.0


class TestBackoffCap:
    def test_backoff_saturates_at_cap(self):
        policy = ResiliencePolicy(
            max_retries=64, retry_backoff=0.5, retry_backoff_max=3.0
        )
        for attempt in range(1, 64):
            assert policy.backoff_seconds(0, 0, attempt) <= 3.0

    def test_backoff_deterministic(self):
        policy = ResiliencePolicy(max_retries=8, retry_backoff=0.5)
        a = [policy.backoff_seconds(1, 4, n) for n in range(1, 9)]
        b = [policy.backoff_seconds(1, 4, n) for n in range(1, 9)]
        assert a == b

    def test_jitter_only_shaves(self):
        policy = ResiliencePolicy(max_retries=8, retry_backoff=0.5)
        for attempt in range(1, 9):
            for island in range(4):
                sleep = policy.backoff_seconds(island, 3, attempt)
                exponential = min(0.5 * 2 ** (attempt - 1), 30.0)
                assert 0.85 * exponential <= sleep <= exponential

    def test_jitter_desynchronizes_islands(self):
        policy = ResiliencePolicy(max_retries=2, retry_backoff=0.5)
        sleeps = {policy.backoff_seconds(q, 0, 1) for q in range(8)}
        assert len(sleeps) > 1

    def test_zero_backoff_stays_zero(self):
        policy = ResiliencePolicy(max_retries=2)
        assert policy.backoff_seconds(0, 0, 1) == 0.0

    def test_policy_validates_cap(self):
        with pytest.raises(ValueError, match="retry_backoff_max"):
            ResiliencePolicy(retry_backoff_max=0.0)

    def test_policy_cap_from_config(self):
        config = EngineConfig(retry_backoff=0.1, retry_backoff_max=2.0)
        assert ResiliencePolicy.from_config(config).retry_backoff_max == 2.0


class TestHangDetection:
    def test_hang_detected_killed_replayed_bit_identical(self, reference):
        deadline = 3.0
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            step_deadline=deadline,
            fault_specs=("hang@island=1,step=7",),
        )
        begin = time.perf_counter()
        final, stats = _trajectory(config)
        elapsed = time.perf_counter() - begin
        assert stats.injected_hangs == 1
        assert stats.hangs_detected == 1
        # detected within the configured deadline (plus scheduling slack)
        assert deadline <= stats.hang_detect_seconds <= deadline + 1.0
        assert stats.retries == 1
        assert stats.retry_successes == 1
        assert elapsed < 60.0  # never waits out the warm-up deadline
        assert np.array_equal(final, reference)

    def test_worker_pid_changes_after_hang(self):
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            step_deadline=3.0,
            fault_specs=("hang@island=0,step=2",),
        )
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            solver.run(state, 1)
            backend = solver.runner.backend
            pid = backend._handles[0].process.pid
            solver.run(state, 4)
            assert backend._handles[0].process.pid != pid
            health = backend.worker_health(0)
            assert health.hangs == 1
            assert health.consecutive_failures == 0  # reset by the replay

    def test_adaptive_deadline_detects_fast_after_warmup(self, reference):
        # Default supervision: no explicit deadline.  After a few warm
        # steps the EWMA-derived deadline is near the 1s floor, so the
        # hang is detected orders of magnitude before the 60s warm-up.
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            deadline_factor=8.0,
            fault_specs=("hang@island=1,step=5",),
        )
        final, stats = _trajectory(config, steps=10)
        assert stats.hangs_detected == 1
        assert stats.hang_detect_seconds < 30.0
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), steps=10)
        assert np.array_equal(final, ref)

    def test_hang_during_exchange_stage(self, reference):
        config = EngineConfig(
            backend="procs",
            halo="exchange",
            max_retries=3,
            step_deadline=3.0,
            fault_specs=("hang@island=0,step=11",),
        )
        final, stats = _trajectory(config)
        assert stats.hangs_detected == 1
        assert stats.retry_successes >= 1
        assert np.array_equal(final, reference)

    def test_in_process_backends_skip_hang_gracefully(self, reference):
        for backend in ("interpreter", "compiled"):
            config = EngineConfig(
                backend=backend,
                max_retries=1,
                fault_specs=("hang@island=1,step=3",),
            )
            final, stats = _trajectory(config)
            assert stats.injected_hangs == 1  # counted ...
            assert stats.hangs_detected == 0  # ... but never applied
            assert stats.retries == 0
            assert np.array_equal(final, reference)

    def test_telemetry_carries_hang_fields(self):
        sink = InMemorySink()
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            step_deadline=3.0,
            fault_specs=("hang@island=0,step=4",),
        )
        _trajectory(config, steps=6, telemetry=Telemetry([sink]))
        hang_steps = [
            event
            for event in sink.events
            if event.faults and event.faults.hangs_detected
        ]
        assert len(hang_steps) == 1
        faults = hang_steps[0].to_dict()["faults"]
        assert faults["injected_hangs"] == 1
        assert faults["hangs_detected"] == 1
        assert faults["hang_detect_seconds"] > 0
        assert "quarantines" in faults
        assert "islands_remapped" in faults

    def test_unsupervised_pool_never_raises_hung(self, reference):
        # Supervision off: plain blocking dispatch, still bit-identical.
        config = EngineConfig(
            backend="procs", step_deadline=None, deadline_factor=None
        )
        final, stats = _trajectory(config)
        assert stats == FaultStats()
        assert np.array_equal(final, reference)


class TestQuarantineAndRemap:
    def test_repeated_hangs_quarantine_and_remap(self):
        # Islands 0,2 live on worker 0; island 2 hangs twice, crossing
        # quarantine_after=2, so worker 0 is retired and both of its
        # islands move to worker 1 — without aborting the run.
        config = EngineConfig(
            backend="procs",
            workers=2,
            max_retries=3,
            step_deadline=2.0,
            quarantine_after=2,
            fault_specs=("hang@island=2,step=5,attempts=2",),
        )
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 4, config=config) as solver:
            final = np.array(solver.run(state, 50), copy=True)
            stats = replace(solver.runner.fault_stats)
            backend = solver.runner.backend
            assert backend.worker_health(0).quarantined
            assert not backend.worker_health(1).quarantined
            assert not backend.serial_fallback
            assert backend._handles[0].islands == ()
            assert sorted(backend._handles[1].islands) == [0, 1, 2, 3]
        assert stats.hangs_detected == 2
        assert stats.quarantines == 1
        assert stats.islands_remapped == 2
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), islands=4)
        assert np.array_equal(final, ref)

    def test_quarantine_disabled_respawns_forever(self):
        config = EngineConfig(
            backend="procs",
            max_retries=3,
            step_deadline=2.0,
            quarantine_after=None,
            fault_specs=("hang@island=1,step=3,attempts=2",),
        )
        final, stats = _trajectory(config, steps=8)
        assert stats.hangs_detected == 2
        assert stats.quarantines == 0
        assert stats.islands_remapped == 0
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), steps=8)
        assert np.array_equal(final, ref)

    def test_crashes_also_count_toward_quarantine(self):
        # kill faults (dead pipe, not hang) cross the same threshold.
        config = EngineConfig(
            backend="procs",
            workers=2,
            max_retries=3,
            step_deadline=5.0,
            quarantine_after=2,
            fault_specs=("kill@island=2,step=4,attempts=2",),
        )
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 4, config=config) as solver:
            final = np.array(solver.run(state, 10), copy=True)
            stats = replace(solver.runner.fault_stats)
            backend = solver.runner.backend
            assert backend.worker_health(0).crashes == 2
            assert backend.worker_health(0).quarantined
        assert stats.quarantines == 1
        assert stats.islands_remapped == 2
        ref, _ = _trajectory(
            EngineConfig(backend="interpreter"), steps=10, islands=4
        )
        assert np.array_equal(final, ref)


class TestSerialFallback:
    def test_pool_exhaustion_degrades_to_serial(self):
        # One worker serves both islands and keeps hanging: it gets
        # quarantined, no survivor remains, and the parent finishes the
        # run itself — with the remaining hang faults skipped gracefully.
        config = EngineConfig(
            backend="procs",
            workers=1,
            max_retries=4,
            step_deadline=2.0,
            quarantine_after=2,
            fault_specs=("hang@island=1,step=2,attempts=5",),
        )
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            final = np.array(solver.run(state, 10), copy=True)
            stats = replace(solver.runner.fault_stats)
            assert solver.runner.backend.serial_fallback
        assert stats.hangs_detected == 2
        assert stats.quarantines == 1
        assert stats.islands_remapped == 2
        assert stats.injected_hangs >= 3  # later firings skipped in serial
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), steps=10)
        assert np.array_equal(final, ref)

    def test_serial_fallback_under_recovery_reports_pool_serial(self):
        config = EngineConfig(
            backend="procs",
            workers=1,
            max_retries=4,
            step_deadline=2.0,
            quarantine_after=1,
            fault_specs=("hang@island=0,step=1,attempts=2",),
        )
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            final = solver.run(
                state, 10, recovery=RecoveryPolicy(checkpoint_every=5)
            )
            report = solver.last_recovery_report
            final = np.array(final, copy=True)
        assert report.pool_serial
        assert not report.clean
        assert report.fault_stats.quarantines == 1
        assert "worker pool exhausted" in report.render()
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), steps=10)
        assert np.array_equal(final, ref)

    def test_serial_fallback_exchange_mode(self):
        config = EngineConfig(
            backend="procs",
            halo="exchange",
            workers=1,
            max_retries=4,
            step_deadline=2.0,
            quarantine_after=1,
            fault_specs=("hang@island=1,step=1,attempts=2",),
        )
        final, stats = _trajectory(config, steps=8)
        assert stats.quarantines == 1
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), steps=8)
        assert np.array_equal(final, ref)


class TestBoundedLifecycle:
    def test_refresh_of_wedged_worker_is_bounded(self):
        # SIGSTOP wedges the worker without killing it: the old refresh
        # blocked in recv() forever; the bounded path respawns instead.
        config = EngineConfig(backend="procs", step_deadline=2.0)
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            solver.run(state, 1)
            backend = solver.runner.backend
            handle = backend._handles[0]
            old_pid = handle.process.pid
            os.kill(old_pid, signal.SIGSTOP)
            begin = time.perf_counter()
            backend.refresh(0)
            elapsed = time.perf_counter() - begin
            assert elapsed < 15.0
            assert handle.process.pid != old_pid
            assert handle.process.is_alive()
            final = np.array(solver.run(state, 4), copy=True)
        ref, _ = _trajectory(EngineConfig(backend="interpreter"), steps=4)
        assert np.array_equal(final, ref)

    def test_close_joins_wedged_workers_concurrently(self):
        # Two SIGSTOPped workers under the old sequential 5s-per-worker
        # join cost 10s+; the shared-deadline close stays near one grace.
        config = EngineConfig(backend="procs")
        state = random_state(SHAPE, seed=7)
        solver = MpdataIslandSolver(SHAPE, 2, config=config)
        try:
            solver.run(state, 1)
            backend = solver.runner.backend
            pids = [h.process.pid for h in backend._handles]
            assert len(pids) == 2
            for pid in pids:
                os.kill(pid, signal.SIGSTOP)
            backend._close_grace = 1.0
            begin = time.perf_counter()
            solver.close()
            elapsed = time.perf_counter() - begin
            assert elapsed < 4.0
            for handle in backend._handles:
                assert handle.process is None
        finally:
            solver.close()


class TestSupervisionConfig:
    def test_defaults_supervise_adaptively(self):
        config = EngineConfig(backend="procs")
        assert config.step_deadline is None
        assert config.deadline_factor == 8.0
        assert config.quarantine_after == 3
        assert config.retry_backoff_max == 30.0

    def test_step_deadline_requires_procs(self):
        with pytest.raises(ValueError, match="procs-backend option"):
            EngineConfig(backend="compiled", step_deadline=1.0)

    def test_validation_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="step_deadline"):
            EngineConfig(backend="procs", step_deadline=0.0)
        with pytest.raises(ValueError, match="deadline_factor"):
            EngineConfig(backend="procs", deadline_factor=-1.0)
        with pytest.raises(ValueError, match="quarantine_after"):
            EngineConfig(backend="procs", quarantine_after=0)
        with pytest.raises(ValueError, match="retry_backoff_max"):
            EngineConfig(retry_backoff_max=0.0)

    def test_round_trips_through_dict(self):
        config = EngineConfig(
            backend="procs",
            step_deadline=1.5,
            deadline_factor=None,
            quarantine_after=5,
            retry_backoff_max=12.0,
        )
        data = config.to_dict()
        assert data["step_deadline"] == 1.5
        assert data["deadline_factor"] is None
        assert data["quarantine_after"] == 5
        assert data["retry_backoff_max"] == 12.0
        assert EngineConfig.from_dict(data) == config

    def test_cli_flags_parse_and_map(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "engine",
                "--backend", "procs",
                "--step-deadline", "2.5",
                "--deadline-factor", "4",
                "--quarantine-after", "2",
            ]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.step_deadline == 2.5
        assert config.deadline_factor == 4.0
        assert config.quarantine_after == 2

    def test_cli_zero_disables_supervision_halves(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "engine",
                "--backend", "procs",
                "--deadline-factor", "0",
                "--quarantine-after", "0",
            ]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.deadline_factor is None
        assert config.quarantine_after is None

    def test_cli_flags_require_procs_backend(self, capsys):
        parser = build_parser()
        for flag in (
            ["--step-deadline", "1.0"],
            ["--deadline-factor", "4"],
            ["--quarantine-after", "2"],
        ):
            args = parser.parse_args(["engine", *flag])
            with pytest.raises(SystemExit):
                _validate_engine_args(parser, args)
            assert "requires --backend procs" in capsys.readouterr().err

    def test_cli_defaults_keep_config_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["engine", "--backend", "procs"])
        config = EngineConfig.from_cli_args(args)
        assert config.deadline_factor == 8.0
        assert config.quarantine_after == 3

    def test_recovery_report_renders_supervision_lines(self):
        report = RecoveryReport(steps=10, completed_steps=10)
        report.fault_stats = FaultStats(
            injected_hangs=2,
            hangs_detected=2,
            hang_detect_seconds=3.0,
            quarantines=1,
            islands_remapped=2,
        )
        text = report.render()
        assert "2 hang" in text
        assert "hangs detected      2" in text
        assert "1.500s" in text  # mean detection latency
        assert "workers quarantined 1 (2 islands remapped)" in text


class TestChaosBenchmarkSmoke:
    """Tier-1 smoke wiring of benchmarks/bench_chaos.py."""

    def _load_bench(self):
        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "bench_chaos.py"
        )
        spec = importlib.util.spec_from_file_location("bench_chaos", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_smoke_run_meets_acceptance(self):
        bench = self._load_bench()
        payload = bench.run(smoke=True)
        assert bench._passed(payload, smoke=True)
        storms = payload["storms"]
        assert storms["hang"]["mean_detect_s"] is not None
        assert storms["quarantine"]["islands_remapped"] == 2
        assert not storms["quarantine"]["serial_fallback"]

    def test_measure_writes_json(self, tmp_path):
        bench = self._load_bench()
        path = tmp_path / "chaos.json"
        bench.run(smoke=True, json_path=path)
        assert path.exists()

"""The stage-granular halo-exchange execution path.

The acceptance bar for the pluggable halo layer: every backend, under
every policy, reproduces the recompute trajectory bit-for-bit over long
runs; the steady-state engine still allocates nothing per step; the
telemetry counters match the ledger's analytic accounting; and a failed
stage is retried in place without corrupting already-received halos.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Variant, build_halo_ledger, partition_grid_2d
from repro.mpdata import mpdata_program, random_state
from repro.mpdata.stages import FIELD_X
from repro.runtime import (
    EngineConfig,
    InMemorySink,
    MpdataIslandSolver,
    Telemetry,
)
from repro.stencil import full_box

SHAPE = (20, 14, 8)
ISLANDS = 3


def _run(config, steps, shape=SHAPE, islands=ISLANDS, sink=None, **kwargs):
    state = random_state(shape, seed=2017)
    telemetry = Telemetry([sink]) if sink is not None else None
    with MpdataIslandSolver(
        shape, islands, config=config, telemetry=telemetry, **kwargs
    ) as solver:
        return np.array(solver.run(state, steps), copy=True)


@pytest.fixture(scope="module")
def reference_50():
    """Fault-free recompute interpreter trajectory, 50 steps."""
    return _run(EngineConfig(), steps=50)


class TestBitIdentity:
    """Acceptance: 50-step trajectories agree across every backend and
    policy — exchanged halos carry exactly the recomputed values."""

    @pytest.mark.parametrize("backend", ("interpreter", "compiled", "tiled"))
    @pytest.mark.parametrize(
        "halo,threshold",
        [("recompute", None), ("exchange", None), ("hybrid", 600)],
    )
    def test_backend_policy_matrix(self, reference_50, backend, halo, threshold):
        config = EngineConfig(
            backend=backend,
            halo=halo,
            halo_threshold=threshold,
            block_shape=(8, 8, 8) if backend == "tiled" else None,
        )
        np.testing.assert_array_equal(_run(config, steps=50), reference_50)

    def test_threaded_exchange_matches_serial(self, reference_50):
        config = EngineConfig(halo="exchange", threads=3)
        np.testing.assert_array_equal(_run(config, steps=50), reference_50)

    def test_2d_grid_exchange_matches_whole_domain(self):
        state = random_state(SHAPE, seed=7)
        partition = partition_grid_2d(full_box(SHAPE), 2, 2)
        with MpdataIslandSolver(SHAPE, 1, config=EngineConfig()) as whole:
            expected = np.array(whole.run(state, 10), copy=True)
        config = EngineConfig(halo="exchange")
        with MpdataIslandSolver(
            SHAPE,
            partition.count,
            config=config,
            variant=Variant.GRID_2D,
            partition=partition,
        ) as split:
            np.testing.assert_array_equal(split.run(state, 10), expected)


class TestSteadyState:
    @pytest.mark.parametrize("backend", ("interpreter", "compiled", "tiled"))
    def test_zero_allocations_per_step_under_exchange(self, backend):
        config = EngineConfig(
            backend=backend,
            halo="exchange",
            reuse_buffers=True,
            reuse_output=True,
            block_shape=(8, 8, 8) if backend == "tiled" else None,
        )
        state = random_state(SHAPE, seed=3)
        with MpdataIslandSolver(SHAPE, ISLANDS, config=config) as solver:
            arrays = solver._arrays(state)
            arrays[FIELD_X] = solver.runner.step(arrays)  # warm-up
            for _ in range(3):
                arrays[FIELD_X] = solver.runner.step(
                    arrays, changed={FIELD_X}
                )
                assert solver.runner.last_step_stats.allocations == 0


class TestTelemetryCounters:
    def test_exchange_counters_match_the_ledger(self):
        sink = InMemorySink()
        config = EngineConfig(halo="exchange")
        _run(config, steps=4, sink=sink)
        with MpdataIslandSolver(SHAPE, ISLANDS, config=config) as solver:
            ledger = solver.runner.halo_ledger
            itemsize = solver.runner.dtype.itemsize
        assert ledger.exchanged_points() > 0
        for event in sink.events:
            assert event.stats.exchanged_bytes == ledger.exchanged_bytes(itemsize)
            assert event.stats.stage_syncs == ledger.step_syncs
            assert event.stats.redundant_points == ledger.redundant_points == 0

    def test_recompute_counters(self):
        sink = InMemorySink()
        _run(EngineConfig(), steps=2, sink=sink)
        for event in sink.events:
            assert event.stats.exchanged_bytes == 0
            assert event.stats.stage_syncs == 1
            assert event.stats.redundant_points > 0

    def test_pinned_config_matches_the_analytic_model(self):
        """Measured bytes on the wire == the model's predicted shipped
        volume: over the runner's ghost-extended domain, the points
        exchange ships are exactly the points recompute duplicates (the
        Sect. 3.2 identity; its physical-domain form — equality with
        Table 2's extra elements — is pinned in the core ledger tests)."""
        sink = InMemorySink()
        config = EngineConfig(halo="exchange")
        _run(config, steps=1, sink=sink)
        with MpdataIslandSolver(SHAPE, ISLANDS, config=config) as solver:
            exchange = solver.runner.halo_ledger
            recompute = solver.runner.decomposition.halo_ledger("recompute")
            itemsize = solver.runner.dtype.itemsize
        measured = sink.events[-1].stats.exchanged_bytes
        assert measured == exchange.exchanged_bytes(itemsize)
        assert measured == recompute.redundant_points * itemsize

    def test_hybrid_counters_sit_between_the_pure_policies(self):
        from repro.core import partition_domain

        sink = InMemorySink()
        config = EngineConfig(halo="hybrid", halo_threshold=600)
        _run(config, steps=1, sink=sink)
        stats = sink.events[-1].stats
        exchange = build_halo_ledger(
            mpdata_program(),
            partition_domain(full_box(SHAPE), ISLANDS, Variant.A),
            policy="exchange",
        )
        assert exchange.exchanged_points() > 0
        assert stats.exchanged_bytes + stats.redundant_points > 0


class TestFaultsUnderExchange:
    @pytest.mark.parametrize(
        "spec",
        (
            "corrupt@island=1,step=2",
            "crash@island=0,step=1,attempts=1",
            "slow@island=2,step=3,delay=0.001",
        ),
    )
    def test_injected_faults_are_healed_stage_locally(self, reference_50, spec):
        """A fault fired during a stage is retried at stage granularity;
        the healed run is still bit-identical to the fault-free one."""
        config = EngineConfig(halo="exchange", fault_specs=(spec,), max_retries=2)
        result = _run(config, steps=50)
        np.testing.assert_array_equal(result, reference_50)

    def test_fault_stats_record_stage_retries(self):
        config = EngineConfig(
            halo="exchange",
            fault_specs=("crash@island=1,step=2,attempts=1",),
            max_retries=2,
        )
        state = random_state(SHAPE, seed=2017)
        with MpdataIslandSolver(SHAPE, ISLANDS, config=config) as solver:
            solver.run(state, 4)
            stats = solver.runner.fault_stats
        assert stats.injected_crashes >= 1
        assert stats.retries >= 1
        assert stats.retry_successes >= 1
        assert stats.islands_failed == 0


class TestConfigSurface:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown halo policy"):
            EngineConfig(halo="mpi")

    def test_hybrid_requires_threshold(self):
        with pytest.raises(ValueError, match="halo_threshold"):
            EngineConfig(halo="hybrid")

    def test_threshold_requires_hybrid(self):
        with pytest.raises(ValueError, match="hybrid-policy option"):
            EngineConfig(halo="exchange", halo_threshold=100)

    def test_round_trip_preserves_halo(self):
        config = EngineConfig(halo="hybrid", halo_threshold=250)
        data = config.to_dict()
        assert data["halo"] == "hybrid"
        assert data["halo_threshold"] == 250
        assert EngineConfig.from_dict(data) == config

    def test_runner_mirrors_halo_config(self):
        config = EngineConfig(halo="exchange")
        with MpdataIslandSolver(SHAPE, ISLANDS, config=config) as solver:
            assert solver.runner.halo == "exchange"
            assert solver.runner.halo_ledger.policy == "exchange"


class TestSteadyReport:
    def test_measure_steady_state_reports_exchange(self):
        from repro.runtime import measure_steady_state

        report = measure_steady_state(
            shape=SHAPE, steps=2, islands=ISLANDS, halo="exchange"
        )
        assert report.bit_identical
        assert report.halo == "exchange"
        engine = report.modes["engine"]
        assert engine["exchanged_bytes_per_step"] > 0
        assert engine["stage_syncs"] > 1
        assert engine["allocations_per_step"] == 0
        assert "halo exchange:" in report.render()
        assert report.to_dict()["halo"] == "exchange"

"""Tests for the tiled (3+1)D backend wired into the partitioned runtime.

The acceptance bar: a 50-step MPDATA run through the tiled engine is
bit-identical to the flat compiled engine, steady-state steps allocate
nothing, a failed block retries the whole island step through the
existing fault machinery, and the timing instrumentation reports where
the step's wall time went.
"""

import json

import numpy as np
import pytest

from repro.mpdata import mpdata_program, random_state
from repro.runtime import (
    MpdataIslandSolver,
    PartitionedRunner,
    StepTimings,
    measure_tiled_engine,
)

SHAPE = (16, 12, 8)
BLOCK = (5, 4, 8)


@pytest.fixture()
def state():
    return random_state(SHAPE, seed=21)


def _arrays(state):
    return {
        "x": state.x, "u1": state.u1, "u2": state.u2,
        "u3": state.u3, "h": state.h,
    }


class _FlakyCompiled:
    """Wraps a block's compiled step; fails the first N calls."""

    def __init__(self, inner, failures=1):
        self._inner = inner
        self.failures_left = failures
        self.calls = 0

    def __call__(self, inputs):
        self.calls += 1
        if self.failures_left:
            self.failures_left -= 1
            raise RuntimeError("injected block fault")
        return self._inner(inputs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestBitIdentity:
    def test_fifty_steps_tiled_equals_flat(self, state):
        """The acceptance run: 50 MPDATA steps, tiled vs flat, bit-equal."""
        flat = MpdataIslandSolver(SHAPE, 3, compiled=True)
        with flat:
            expected = np.array(flat.run(state, 50), copy=True)
        for intra in (1, 2):
            with MpdataIslandSolver(
                SHAPE, 3, block_shape=BLOCK, intra_threads=intra
            ) as tiled:
                actual = tiled.run(state, 50)
            np.testing.assert_array_equal(expected, actual)

    def test_tiled_equals_interpreted(self, state):
        with MpdataIslandSolver(SHAPE, 2) as plain:
            expected = np.array(plain.run(state, 5), copy=True)
        with MpdataIslandSolver(SHAPE, 2, block_shape=(4, 4, 4)) as tiled:
            actual = tiled.run(state, 5)
        np.testing.assert_array_equal(expected, actual)

    def test_tiled_with_island_threads(self, state):
        """Inter-island threads and intra-island teams compose."""
        with MpdataIslandSolver(SHAPE, 2, compiled=True) as flat:
            expected = np.array(flat.run(state, 4), copy=True)
        with MpdataIslandSolver(
            SHAPE, 2, threads=2, block_shape=BLOCK, intra_threads=2
        ) as tiled:
            actual = tiled.run(state, 4)
        np.testing.assert_array_equal(expected, actual)

    def test_open_boundary(self, state):
        with MpdataIslandSolver(SHAPE, 2, boundary="open", compiled=True) as flat:
            expected = np.array(flat.run(state, 5), copy=True)
        with MpdataIslandSolver(
            SHAPE, 2, boundary="open", block_shape=(4, 4, 4)
        ) as tiled:
            actual = tiled.run(state, 5)
        np.testing.assert_array_equal(expected, actual)


class TestSteadyState:
    def test_zero_allocations_after_warmup(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3, block_shape=BLOCK,
            reuse_output=True,
        ) as runner:
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)  # warm-up fills workspaces
            assert runner.last_step_stats.allocations > 0
            for _ in range(3):
                arrays["x"] = runner.step(arrays, changed={"x"})
                stats = runner.last_step_stats
                assert stats.allocations == 0
                assert stats.reused > 0

    def test_intra_threads_require_block_shape(self):
        with pytest.raises(ValueError, match="block_shape"):
            PartitionedRunner(mpdata_program(), SHAPE, islands=2, intra_threads=2)

    def test_block_shape_takes_precedence_over_compiled(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, compiled=True,
            block_shape=(4, 4, 4),
        ) as runner:
            assert runner._tiled is not None
            arrays = _arrays(state)
            runner.step(arrays)
            assert sum(p.block_count for p in runner._tiled.values()) > 1


class TestRetryComposition:
    def test_failed_block_retries_whole_island(self, state):
        """One poisoned block fails its island's first attempt; the retry
        resets the island's workspaces, re-sweeps every block, and the
        step's result is still bit-identical to the flat engine."""
        with MpdataIslandSolver(SHAPE, 2, compiled=True) as flat:
            expected = np.array(flat.run(state, 3), copy=True)
        with MpdataIslandSolver(
            SHAPE, 2, block_shape=BLOCK, max_retries=1
        ) as solver:
            task = solver.runner._tiled[0].tasks[1]
            task.compiled = _FlakyCompiled(task.compiled, failures=1)
            actual = solver.run(state, 3)
            stats = solver.runner.fault_stats
        np.testing.assert_array_equal(expected, actual)
        assert stats.retries == 1
        assert stats.retry_successes == 1
        assert stats.islands_failed == 0

    def test_exhausted_retries_fail_the_step(self, state):
        from repro.runtime import IslandFailure

        with MpdataIslandSolver(SHAPE, 2, block_shape=BLOCK) as solver:
            task = solver.runner._tiled[1].tasks[0]
            task.compiled = _FlakyCompiled(task.compiled, failures=10)
            with pytest.raises(IslandFailure):
                solver.run(state, 1)

    def test_injected_crash_fault_with_tiled_backend(self, state):
        """The existing fault injector composes with tiled islands."""
        from repro.runtime import FaultInjector

        with MpdataIslandSolver(SHAPE, 2, compiled=True) as flat:
            expected = np.array(flat.run(state, 4), copy=True)
        injector = FaultInjector.from_strings(["crash@island=1,step=2"])
        with MpdataIslandSolver(
            SHAPE, 2, block_shape=BLOCK, max_retries=2,
            fault_injector=injector,
        ) as solver:
            actual = solver.run(state, 4)
        np.testing.assert_array_equal(expected, actual)


class TestTimings:
    def test_tiled_step_timings(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3, block_shape=BLOCK,
            collect_timings=True,
        ) as runner:
            arrays = _arrays(state)
            runner.step(arrays)
            timings = runner.last_step_stats.timings
        assert isinstance(timings, StepTimings)
        assert len(timings.island_seconds) == 3
        assert timings.blocks_swept > 0
        assert timings.critical_path_seconds <= timings.total_compute_seconds
        assert len(timings.stage_seconds) == 17
        assert all(seconds >= 0.0 for seconds in timings.stage_seconds.values())

    def test_flat_compiled_step_timings(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, compiled=True,
            collect_timings=True,
        ) as runner:
            arrays = _arrays(state)
            runner.step(arrays)
            timings = runner.last_step_stats.timings
        assert len(timings.island_seconds) == 2
        assert timings.blocks_swept == 0  # flat islands sweep no blocks
        assert len(timings.stage_seconds) == 17

    def test_interpreted_step_timings(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, collect_timings=True,
        ) as runner:
            arrays = _arrays(state)
            runner.step(arrays)
            timings = runner.last_step_stats.timings
        assert len(timings.island_seconds) == 2
        assert len(timings.stage_seconds) == 17

    def test_timings_off_by_default(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, block_shape=BLOCK,
        ) as runner:
            arrays = _arrays(state)
            runner.step(arrays)
            assert runner.last_step_stats.timings is None

    def test_render_mentions_islands_blocks_and_stages(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, block_shape=BLOCK,
            collect_timings=True,
        ) as runner:
            arrays = _arrays(state)
            runner.step(arrays)
            text = runner.last_step_stats.timings.render()
        assert "critical path" in text
        assert "blocks swept" in text
        assert "top stages" in text

    def test_bit_identity_unaffected_by_timing(self, state):
        with MpdataIslandSolver(SHAPE, 2, block_shape=BLOCK) as plain:
            expected = np.array(plain.run(state, 3), copy=True)
        with MpdataIslandSolver(
            SHAPE, 2, block_shape=BLOCK, collect_timings=True
        ) as timed:
            actual = timed.run(state, 3)
        np.testing.assert_array_equal(expected, actual)


class TestMeasureTiledEngine:
    def test_smoke_report(self):
        report = measure_tiled_engine(
            shape=(12, 10, 8),
            steps=2,
            islands=2,
            block_shape=(4, 4, 4),
            intra_threads=2,
            collect_timings=True,
        )
        assert report.bit_identical
        assert set(report.modes) == {"flat", "tiled", "tiled+team"}
        for numbers in report.modes.values():
            assert numbers["step_time_s"] > 0
        assert report.modes["tiled"]["blocks"] > 0
        assert report.speedup("tiled") > 0
        assert report.timing_report
        json.dumps(report.to_dict())  # strict-JSON serializable
        assert "bit-identical" in report.render()

    def test_auto_block_shape(self):
        report = measure_tiled_engine(
            shape=(12, 10, 8), steps=1, islands=1,
            block_cache_bytes=256 * 1024,
        )
        assert report.block_shape is not None
        assert report.bit_identical


class TestAutotuneMeasuredObjective:
    def test_times_real_steps(self):
        from repro.stencil import (
            Box,
            autotune_blocks,
            measured_objective,
        )

        shape = (12, 10, 8)
        result = autotune_blocks(
            mpdata_program(),
            Box((0, 0, 0), shape),
            cache_bytes=10**9,
            score=measured_objective(shape, islands=1, steps=1),
            max_candidates=2,
        )
        assert result.evaluated == 2
        assert result.best_score > 0
        assert all(score > 0 for _, score in result.ranking)

"""Tests for the steady-state execution engine in the partitioned runtime.

Covers the persistent resources (thread pool, ghost buffers, output array,
per-island arenas), the per-step allocation counters, the lifecycle API,
and the tier-1 smoke run of the steady-state benchmark.
"""

import importlib.util
import pathlib

import numpy as np
import pytest

from repro.mpdata import MpdataSolver, random_state
from repro.runtime import (
    MpdataIslandSolver,
    PartitionedRunner,
    measure_steady_state,
    verify_islands,
)
from repro.mpdata import mpdata_program

SHAPE = (16, 12, 8)


@pytest.fixture()
def state():
    return random_state(SHAPE, seed=33)


def _arrays(state):
    return {
        "x": state.x, "u1": state.u1, "u2": state.u2,
        "u3": state.u3, "h": state.h,
    }


class TestZeroAllocationSteadyState:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_zero_allocations_after_warmup(self, state, compiled):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3,
            compiled=compiled, reuse_buffers=True, reuse_output=True,
        ) as runner:
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)  # warm-up allocates everything
            assert runner.last_step_stats.allocations > 0
            for _ in range(3):
                arrays["x"] = runner.step(arrays, changed={"x"})
                stats = runner.last_step_stats
                assert stats.allocations == 0
                assert stats.reused > 0

    def test_threaded_steady_state_zero_allocations(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=4, threads=4,
            reuse_buffers=True, reuse_output=True,
        ) as runner:
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)
            arrays["x"] = runner.step(arrays, changed={"x"})
            assert runner.last_step_stats.allocations == 0

    def test_naive_mode_allocates_every_step(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, reuse_buffers=False,
        ) as runner:
            arrays = _arrays(state)
            for _ in range(2):
                arrays["x"] = runner.step(arrays)
                stats = runner.last_step_stats
                # 5 ghost extensions + 1 output + per-island stage storage.
                assert stats.ghost_allocations == 5
                assert stats.output_allocations == 1
                assert stats.stage_allocations > 0

    def test_reuse_output_returns_same_buffer(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2,
            reuse_buffers=True, reuse_output=True,
        ) as runner:
            first = runner.step(_arrays(state))
            second = runner.step(_arrays(state), changed={"x"})
            assert first is second


class TestBitIdentity:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_engine_matches_whole_domain(self, state, compiled):
        expected = MpdataSolver(SHAPE).run(state, 3)
        with MpdataIslandSolver(
            SHAPE, 3, compiled=compiled,
            reuse_buffers=True, reuse_output=True,
        ) as solver:
            actual = solver.run(state, 3)
        np.testing.assert_array_equal(actual, expected)

    def test_engine_matches_naive_runner(self, state):
        with MpdataIslandSolver(SHAPE, 2, reuse_buffers=False) as naive:
            expected = naive.run(state, 2)
        with MpdataIslandSolver(
            SHAPE, 2, reuse_buffers=True, reuse_output=True
        ) as engine:
            actual = engine.run(state, 2)
        np.testing.assert_array_equal(actual, expected)

    def test_verify_islands_engine_configurations(self, state):
        for compiled in (False, True):
            result = verify_islands(
                SHAPE, state, islands=3, steps=2, compiled=compiled,
                reuse_buffers=True, reuse_output=True,
            )
            assert result.bit_exact

    def test_changed_hint_is_bit_identical_to_full_refill(self, state):
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, reuse_buffers=True,
        ) as hinted, PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, reuse_buffers=True,
        ) as refilled:
            arrays_a = _arrays(state)
            arrays_b = _arrays(state)
            arrays_a["x"] = hinted.step(arrays_a)
            arrays_b["x"] = refilled.step(arrays_b)
            for _ in range(2):
                arrays_a["x"] = hinted.step(arrays_a, changed={"x"})
                arrays_b["x"] = refilled.step(arrays_b)  # refills all 5
            np.testing.assert_array_equal(arrays_a["x"], arrays_b["x"])


class TestLifecycle:
    def test_close_is_idempotent_and_context_manager(self, state):
        runner = PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, threads=2,
        )
        runner.step(_arrays(state))
        assert runner._pool is not None  # pool persisted across the call
        runner.close()
        runner.close()
        assert runner._pool is None

    def test_threaded_step_after_close_rejected(self, state):
        runner = PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, threads=2,
        )
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.step(_arrays(state))

    def test_solver_context_manager_closes_runner(self, state):
        with MpdataIslandSolver(SHAPE, 2, threads=2) as solver:
            solver.run(state, 2)
            pool = solver.runner._pool
            assert pool is not None
        assert solver.runner._pool is None

    def test_sequential_runner_never_builds_pool(self, state):
        with PartitionedRunner(mpdata_program(), SHAPE, islands=2) as runner:
            runner.step(_arrays(state))
            assert runner._pool is None

    def test_run_validates_state_once(self, state, monkeypatch):
        calls = {"n": 0}
        original = type(state).validate

        def counting_validate(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(type(state), "validate", counting_validate)
        with MpdataIslandSolver(SHAPE, 2) as solver:
            solver.run(state, 3)
        assert calls["n"] == 1


class TestSteadyStateBenchmarkSmoke:
    """Tier-1 smoke wiring of benchmarks/bench_steady_state.py."""

    def _load_bench(self):
        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "bench_steady_state.py"
        )
        spec = importlib.util.spec_from_file_location("bench_steady_state", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_smoke_run_meets_acceptance(self):
        bench = self._load_bench()
        reports = bench.run(smoke=True)
        for report in reports.values():
            assert report.bit_identical
            assert report.modes["engine"]["allocations_per_step"] == 0.0
            # >= 2x fewer allocations per steady-state step (here: inf).
            assert report.allocation_ratio >= 2.0

    def test_measure_writes_json(self, tmp_path):
        bench = self._load_bench()
        target = tmp_path / "BENCH_steady_state.json"
        bench.run(smoke=True, json_path=target)
        import json

        payload = json.loads(target.read_text())
        assert set(payload) == {"interpreted", "compiled"}
        for entry in payload.values():
            assert entry["bit_identical"] is True
            assert entry["modes"]["engine"]["allocations_per_step"] == 0.0
            # Infinite ratio (zero engine allocations) serializes as null.
            assert entry["allocation_ratio"] is None

    def test_measure_steady_state_smoke(self):
        report = measure_steady_state(shape=(24, 16, 8), steps=2, islands=2)
        assert report.bit_identical
        assert report.allocation_ratio >= 2.0

"""Tests for the functional partitioned runtime and verification."""

import numpy as np
import pytest

from repro.core import Variant, partition_grid_2d
from repro.mpdata import MpdataSolver, random_state, upwind_program
from repro.runtime import (
    MpdataIslandSolver,
    PartitionedRunner,
    verify_islands,
    verify_variants,
)
from repro.stencil import full_box


SHAPE = (16, 12, 8)


@pytest.fixture()
def state():
    return random_state(SHAPE, seed=21)


class TestPartitionedRunner:
    def test_requires_single_output_program(self, mpdata):
        runner = PartitionedRunner(mpdata, SHAPE, islands=2)
        assert runner.output_field == "x_out"

    def test_missing_input_rejected(self, mpdata):
        runner = PartitionedRunner(mpdata, SHAPE, islands=2)
        with pytest.raises(KeyError, match="u1"):
            runner.step({"x": np.zeros(SHAPE)})

    def test_wrong_shape_rejected(self, mpdata, state):
        runner = PartitionedRunner(mpdata, SHAPE, islands=2)
        arrays = {
            "x": state.x[:-1], "u1": state.u1, "u2": state.u2,
            "u3": state.u3, "h": state.h,
        }
        with pytest.raises(ValueError, match="shape"):
            runner.step(arrays)

    def test_2d_partition_supported(self, mpdata, state):
        partition = partition_grid_2d(full_box(SHAPE), 2, 2)
        runner = PartitionedRunner(mpdata, SHAPE, partition=partition)
        out = runner.step(
            {
                "x": state.x, "u1": state.u1, "u2": state.u2,
                "u3": state.u3, "h": state.h,
            }
        )
        expected = MpdataSolver(SHAPE).step(state)
        np.testing.assert_array_equal(out, expected)


class TestMpdataIslandSolver:
    @pytest.mark.parametrize("islands", [1, 2, 3, 4])
    def test_bit_exact_vs_whole_domain(self, state, islands):
        split = MpdataIslandSolver(SHAPE, islands)
        whole = MpdataSolver(SHAPE)
        np.testing.assert_array_equal(split.step(state), whole.step(state))

    def test_variant_b(self, state):
        split = MpdataIslandSolver(SHAPE, 3, variant=Variant.B)
        whole = MpdataSolver(SHAPE)
        np.testing.assert_array_equal(split.step(state), whole.step(state))

    def test_threaded_matches_sequential(self, state):
        threaded = MpdataIslandSolver(SHAPE, 4, threads=4)
        sequential = MpdataIslandSolver(SHAPE, 4, threads=1)
        np.testing.assert_array_equal(
            threaded.run(state, 3), sequential.run(state, 3)
        )

    def test_upwind_program_supported(self, state):
        split = MpdataIslandSolver(SHAPE, 2, program=upwind_program())
        whole = MpdataSolver(SHAPE, program=upwind_program())
        np.testing.assert_array_equal(split.step(state), whole.step(state))

    def test_negative_steps_rejected(self, state):
        with pytest.raises(ValueError):
            MpdataIslandSolver(SHAPE, 2).run(state, -1)

    def test_decomposition_exposed(self):
        solver = MpdataIslandSolver(SHAPE, 3)
        assert solver.decomposition.count == 3


class TestVerify:
    def test_verify_islands_passes(self, state):
        result = verify_islands(SHAPE, state, islands=3, steps=2)
        assert result.bit_exact
        assert bool(result)
        assert result.max_abs_diff == 0.0

    def test_verify_open_boundary(self, state):
        result = verify_islands(
            SHAPE, state, islands=2, steps=2, boundary="open"
        )
        assert result.bit_exact

    def test_verify_variants_covers_both(self, state):
        results = verify_variants(SHAPE, state, [2, 4], steps=1)
        assert len(results) == 4
        assert {r.variant for r in results} == {Variant.A, Variant.B}
        assert all(results)

"""Tests for the engine configuration layer and the telemetry spine.

Covers the frozen :class:`EngineConfig` (validation, JSON round-trip,
CLI derivation, legacy-kwarg shim), the backend registry (every backend
selectable by key, all bit-identical), and the pluggable telemetry
sinks.
"""

import json
import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import build_parser
from repro.mpdata import random_state
from repro.mpdata.stages import FIELD_X
from repro.runtime import (
    BACKEND_KEYS,
    BACKENDS,
    EngineConfig,
    InMemorySink,
    JsonlSink,
    MpdataIslandSolver,
    StepEvent,
    TableSink,
    Telemetry,
    native_available,
)

SHAPE = (16, 12, 8)


def _trajectory(config, steps=50, islands=2, telemetry=None):
    state = random_state(SHAPE, seed=7)
    with MpdataIslandSolver(
        SHAPE, islands, config=config, telemetry=telemetry
    ) as solver:
        return np.array(solver.run(state, steps), copy=True)


class TestEngineConfigValidation:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "interpreter"
        assert config.boundary == "periodic"
        assert config.dtype == "float64"
        assert config.numpy_dtype == np.dtype("float64")
        assert config.max_retries == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="gpu")

    def test_unknown_boundary_rejected(self):
        with pytest.raises(ValueError, match="boundary"):
            EngineConfig(boundary="reflecting")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            EngineConfig(max_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="retry_backoff"):
            EngineConfig(retry_backoff=-0.5)

    def test_intra_threads_require_tiled_backend(self):
        with pytest.raises(ValueError, match="intra_threads"):
            EngineConfig(backend="compiled", intra_threads=2)

    def test_tiled_requires_block_shape(self):
        with pytest.raises(ValueError, match="block_shape"):
            EngineConfig(backend="tiled")

    def test_block_shape_requires_tiled(self):
        with pytest.raises(ValueError, match="block_shape"):
            EngineConfig(backend="compiled", block_shape=(8, 8, 8))

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(fault_specs=("nonsense",))

    def test_registry_matches_keys(self):
        assert set(BACKENDS) == set(BACKEND_KEYS)
        for key, backend_cls in BACKENDS.items():
            assert backend_cls.key == key


class TestEngineConfigRoundTrip:
    def test_to_dict_from_dict_identity(self):
        config = EngineConfig(
            backend="tiled",
            boundary="open",
            threads=2,
            block_shape=(8, 6, 8),
            intra_threads=2,
            max_retries=3,
            retry_backoff=0.25,
            fault_specs=("crash@island=0,step=1",),
            collect_timings=True,
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_safe(self):
        config = EngineConfig(backend="tiled", block_shape=(8, 8, 8))
        assert EngineConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        ) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises((TypeError, ValueError)):
            EngineConfig.from_dict({"backend": "interpreter", "gpu": True})

    def test_cli_args_round_trip_same_behaviour(self):
        args = build_parser().parse_args(
            ["engine", "--shape", *map(str, SHAPE), "--islands", "2",
             "--compiled"]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.backend == "compiled"
        assert config.max_retries == 0  # no fault flags -> retries stay off
        revived = EngineConfig.from_dict(config.to_dict())
        assert revived == config
        baseline = _trajectory(config, steps=5)
        again = _trajectory(revived, steps=5)
        assert np.array_equal(baseline, again)

    def test_cli_args_fault_flags_engage_retries(self):
        args = build_parser().parse_args(
            ["engine", "--faults", "crash@island=0,step=1",
             "--checkpoint-every", "2", "--retries", "4"]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.max_retries == 4
        assert config.fault_specs == ("crash@island=0,step=1",)
        assert config.build_fault_injector() is not None


class TestLegacyKwargShim:
    def test_legacy_kwargs_warn_and_match_config(self):
        state = random_state(SHAPE, seed=7)
        with pytest.warns(DeprecationWarning, match="config=EngineConfig"):
            with MpdataIslandSolver(
                SHAPE, 2, compiled=True, reuse_output=True
            ) as solver:
                legacy = np.array(solver.run(state, 5), copy=True)
        config = EngineConfig(backend="compiled", reuse_output=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            modern = _trajectory(config, steps=5)
        assert np.array_equal(legacy, modern)

    def test_block_shape_kwarg_selects_tiled_over_compiled(self):
        config = EngineConfig.from_legacy_kwargs(
            compiled=True, block_shape=(8, 6, 8)
        )
        assert config.backend == "tiled"
        assert config.block_shape == (8, 6, 8)

    def test_mixing_config_and_legacy_kwargs_is_an_error(self):
        with pytest.raises(TypeError, match="config"):
            MpdataIslandSolver(
                SHAPE, 2, config=EngineConfig(), compiled=True
            )

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="turbo"):
            MpdataIslandSolver(SHAPE, 2, turbo=True)


class TestBackendRegistryBitIdentical:
    def test_all_backends_bit_identical_over_50_steps(self):
        configs = {
            "interpreter": EngineConfig(backend="interpreter"),
            "compiled": EngineConfig(backend="compiled"),
            "tiled": EngineConfig(backend="tiled", block_shape=(8, 6, 8)),
            "procs": EngineConfig(backend="procs", workers=2),
            "native": EngineConfig(backend="native"),
        }
        assert set(configs) == set(BACKEND_KEYS)
        if not native_available():
            del configs["native"]
        finals = {key: _trajectory(cfg) for key, cfg in configs.items()}
        reference = finals["interpreter"]
        for key in finals:
            assert np.array_equal(finals[key], reference), key

    def test_steady_state_allocation_free_for_every_backend(self):
        for key in BACKEND_KEYS:
            if key == "native" and not native_available():
                continue
            block = (8, 6, 8) if key == "tiled" else None
            config = EngineConfig(
                backend=key, block_shape=block, reuse_output=True
            )
            state = random_state(SHAPE, seed=7)
            with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
                arrays = solver._arrays(state)
                arrays[FIELD_X] = solver.runner.step(arrays)  # warm-up
                arrays[FIELD_X] = solver.runner.step(
                    arrays, changed={FIELD_X}
                )
                assert solver.last_step_stats.allocations == 0, key


class TestTelemetry:
    def test_disabled_by_default(self):
        telemetry = Telemetry()
        assert not telemetry.enabled
        assert telemetry.last_event is None

    def test_in_memory_sink_records_each_step(self):
        sink = InMemorySink()
        _trajectory(
            EngineConfig(backend="compiled", reuse_output=True), steps=4,
            telemetry=Telemetry((sink,)),
        )
        assert len(sink.events) == 4
        assert [event.step for event in sink.events] == [0, 1, 2, 3]
        assert sink.last.stats.allocations == 0  # steady after step 0
        assert sink.last.faults.injected_crashes == 0

    def test_in_memory_sink_capacity_bound(self):
        sink = InMemorySink(capacity=2)
        _trajectory(
            EngineConfig(backend="compiled", reuse_output=True), steps=5,
            telemetry=Telemetry((sink,)),
        )
        assert [event.step for event in sink.events] == [3, 4]

    def test_jsonl_sink_round_trips_events(self, tmp_path):
        path = tmp_path / "steps.jsonl"
        _trajectory(
            EngineConfig(backend="compiled", reuse_output=True), steps=3,
            telemetry=Telemetry((JsonlSink(path),)),
        )
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        payload = json.loads(lines[-1])
        assert payload["step"] == 2
        assert payload["allocations"] == 0

    def test_table_sink_renders_rows(self):
        sink = TableSink()
        _trajectory(
            EngineConfig(backend="compiled"), steps=2,
            telemetry=Telemetry((sink,)),
        )
        table = sink.render()
        assert "step" in table
        assert len(table.strip().splitlines()) >= 3  # header + 2 rows

    def test_event_dict_shape(self):
        sink = InMemorySink()
        _trajectory(
            EngineConfig(backend="compiled"), steps=1,
            telemetry=Telemetry((sink,)),
        )
        event = sink.last
        assert isinstance(event, StepEvent)
        payload = event.to_dict()
        assert {"step", "wall_seconds", "allocations", "faults"} <= set(
            payload
        )

    def test_retry_activity_lands_in_events(self):
        sink = InMemorySink()
        config = EngineConfig(
            backend="compiled",
            max_retries=2,
            fault_specs=("crash@island=0,step=1",),
        )
        faulty = _trajectory(config, steps=3, telemetry=Telemetry((sink,)))
        clean = _trajectory(replace(config, fault_specs=()), steps=3)
        assert np.array_equal(faulty, clean)
        by_step = {event.step: event for event in sink.events}
        assert by_step[1].faults.injected_crashes == 1
        assert by_step[1].faults.retries == 1
        assert by_step[0].faults.retries == 0
        assert by_step[2].faults.retries == 0

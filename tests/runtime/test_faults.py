"""Tests for deterministic fault injection and per-island retry.

The island is the unit of failure isolation: a crashed island task is
re-executed in place on a fresh arena without touching its neighbours,
a broken thread pool degrades to serial execution, and a step that
cannot complete is never observable as one that did.
"""

import numpy as np
import pytest

from repro.mpdata import MpdataSolver, mpdata_program, random_state
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    FaultStats,
    InjectedFault,
    IslandFailure,
    MpdataIslandSolver,
    PartitionedRunner,
    ResiliencePolicy,
    parse_fault_spec,
)

SHAPE = (16, 12, 8)


@pytest.fixture()
def state():
    return random_state(SHAPE, seed=33)


def _arrays(state):
    return {
        "x": state.x, "u1": state.u1, "u2": state.u2,
        "u3": state.u3, "h": state.h,
    }


class TestFaultSpecParsing:
    def test_parse_full_spec(self):
        spec = parse_fault_spec("crash@island=1,step=3,attempts=2")
        assert (spec.kind, spec.island, spec.step, spec.attempts) == (
            "crash", 1, 3, 2,
        )

    def test_parse_defaults(self):
        spec = parse_fault_spec("slow@island=0")
        assert spec.kind == "slow"
        assert spec.step is None  # every step
        assert spec.attempts == 1  # transient

    def test_parse_corrupt_value(self):
        spec = parse_fault_spec("corrupt@island=2,value=inf")
        assert np.isinf(spec.value)
        assert np.isnan(parse_fault_spec("corrupt@island=2").value)

    @pytest.mark.parametrize(
        "text, match",
        [
            ("explode@island=1", "unknown fault kind"),
            ("crash@step=3", "must name island"),
            ("crash@island=1,when=now", "unknown fault field"),
            ("crash@island=1,step", "malformed fault field"),
        ],
    )
    def test_parse_rejects(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_fault_spec(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="nope", island=0),
            dict(kind="crash", island=-1),
            dict(kind="crash", island=0, step=-1),
            dict(kind="crash", island=0, attempts=0),
            dict(kind="slow", island=0, delay=-0.1),
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestFaultInjector:
    def test_fires_only_at_site_and_within_budget(self):
        injector = FaultInjector([FaultSpec("crash", island=1, step=2, attempts=2)])
        assert injector.fire(0, 1) == []
        assert injector.fire(2, 0) == []
        assert len(injector.fire(2, 1)) == 1  # first attempt
        assert len(injector.fire(2, 1)) == 1  # second attempt
        assert injector.fire(2, 1) == []  # budget spent
        assert injector.exhausted

    def test_wildcard_step_matches_every_step(self):
        injector = FaultInjector([FaultSpec("slow", island=0, attempts=3)])
        fired = [bool(injector.fire(step, 0)) for step in range(5)]
        assert fired == [True, True, True, False, False]

    def test_reset_restores_budget(self):
        injector = FaultInjector([FaultSpec("crash", island=0, step=0)])
        assert injector.fire(0, 0)
        assert not injector.fire(0, 0)
        injector.reset()
        assert injector.fire(0, 0)

    def test_from_strings(self):
        injector = FaultInjector.from_strings(
            ["crash@island=1,step=3", "corrupt@island=0,step=7"]
        )
        assert [spec.kind for spec in injector.specs] == ["crash", "corrupt"]


class TestFaultStats:
    def test_absorb_and_since(self):
        total = FaultStats(retries=2, injected_crashes=1)
        total.absorb(FaultStats(retries=1, retry_successes=1))
        assert total.retries == 3
        assert total.retry_successes == 1
        delta = total.since(FaultStats(retries=2))
        assert delta.retries == 1
        assert delta.injected_crashes == 1


class TestPerIslandRetry:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_transient_crash_retried_bit_identical(self, state, compiled):
        expected = MpdataSolver(SHAPE, compiled=compiled).run(state, 3)
        injector = FaultInjector([FaultSpec("crash", island=1, step=1)])
        with MpdataIslandSolver(
            SHAPE, 3, compiled=compiled, reuse_output=True,
            max_retries=2, fault_injector=injector,
        ) as solver:
            actual = solver.run(state, 3)
            stats = solver.runner.fault_stats
        np.testing.assert_array_equal(actual, expected)
        assert stats.injected_crashes == 1
        assert stats.retries == 1
        assert stats.retry_successes == 1
        assert stats.islands_failed == 0

    def test_two_islands_faulted_same_step(self, state):
        expected = MpdataSolver(SHAPE).run(state, 4)
        injector = FaultInjector([
            FaultSpec("crash", island=0, step=2),
            FaultSpec("crash", island=2, step=2),
        ])
        with MpdataIslandSolver(
            SHAPE, 4, threads=4, reuse_output=True,
            max_retries=1, fault_injector=injector,
        ) as solver:
            actual = solver.run(state, 4)
        np.testing.assert_array_equal(actual, expected)
        assert solver.runner.fault_stats.retry_successes == 2

    def test_retry_budget_exhaustion_raises_island_failure(self, state):
        injector = FaultInjector(
            [FaultSpec("crash", island=1, step=0, attempts=99)]
        )
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3,
            max_retries=2, fault_injector=injector,
        ) as runner:
            with pytest.raises(IslandFailure) as excinfo:
                runner.step(_arrays(state))
        assert excinfo.value.island == 1
        assert excinfo.value.attempts == 3  # 1 try + 2 retries
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert runner.fault_stats.islands_failed == 1

    def test_no_retry_by_default(self, state):
        injector = FaultInjector([FaultSpec("crash", island=0, step=0)])
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, fault_injector=injector,
        ) as runner:
            with pytest.raises(IslandFailure):
                runner.step(_arrays(state))

    def test_retry_backoff_sleeps(self, state, monkeypatch):
        import repro.runtime.island_exec as island_exec

        sleeps = []
        monkeypatch.setattr(
            island_exec.time, "sleep", lambda seconds: sleeps.append(seconds)
        )
        injector = FaultInjector(
            [FaultSpec("crash", island=0, step=0, attempts=2)]
        )
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2,
            max_retries=3, retry_backoff=0.5, fault_injector=injector,
        ) as runner:
            runner.step(_arrays(state))
        # Exponential backoff per attempt, with the policy's deterministic
        # down-jitter applied (never above the unjittered exponential).
        policy = ResiliencePolicy(max_retries=3, retry_backoff=0.5)
        assert sleeps == [
            policy.backoff_seconds(0, 0, 1),
            policy.backoff_seconds(0, 0, 2),
        ]
        assert 0.0 < sleeps[0] <= 0.5
        assert sleeps[0] < sleeps[1] <= 1.0


class TestSlowAndCorruptFaults:
    def test_slow_island_completes_and_is_counted(self, state):
        expected = MpdataSolver(SHAPE).run(state, 2)
        injector = FaultInjector(
            [FaultSpec("slow", island=0, step=1, delay=0.001)]
        )
        with MpdataIslandSolver(
            SHAPE, 2, reuse_output=True, fault_injector=injector,
        ) as solver:
            actual = solver.run(state, 2)
        np.testing.assert_array_equal(actual, expected)
        assert solver.runner.fault_stats.injected_slowdowns == 1

    def test_corruption_poisons_output_without_guards(self, state):
        injector = FaultInjector([FaultSpec("corrupt", island=1, step=0)])
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3, fault_injector=injector,
        ) as runner:
            out = runner.step(_arrays(state))
        assert not np.isfinite(out).all()
        assert runner.fault_stats.injected_corruptions == 1


class TestPartialFailureInvalidation:
    """Satellite: a failed step must never look like a successful one."""

    def test_stats_not_published_on_failure(self, state):
        injector = FaultInjector([FaultSpec("crash", island=1, step=1)])
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2,
            reuse_buffers=True, reuse_output=True, fault_injector=injector,
        ) as runner:
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)
            assert runner.last_step_stats is not None
            with pytest.raises(IslandFailure):
                runner.step(arrays, changed={"x"})
            assert runner.last_step_stats is None

    def test_persistent_output_buffer_poisoned_and_dropped(self, state):
        # Island 1 fails *after* island 0 already wrote its part: the
        # persistent buffer is half-new, half-old.  It must come back
        # unambiguously invalid (NaN), and the runner must not hand the
        # same buffer out again.
        injector = FaultInjector(
            [FaultSpec("crash", island=1, step=1, attempts=99)]
        )
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2,
            reuse_buffers=True, reuse_output=True, fault_injector=injector,
        ) as runner:
            arrays = _arrays(state)
            first = runner.step(arrays)
            held = first  # caller keeps the persistent buffer
            arrays["x"] = first
            with pytest.raises(IslandFailure):
                runner.step(arrays, changed={"x"})
            assert np.isnan(held).all()
            assert runner._out is None

    def test_failed_then_clean_step_recovers(self, state):
        """After a failed step the runner still produces correct output."""
        expected_1 = MpdataSolver(SHAPE).run(state, 1)
        injector = FaultInjector([FaultSpec("crash", island=0, step=0)])
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2,
            reuse_buffers=True, reuse_output=True, fault_injector=injector,
        ) as runner:
            arrays = _arrays(state)
            with pytest.raises(IslandFailure):
                runner.step(arrays)
            out = runner.step(arrays)  # fault was transient; now clean
            np.testing.assert_array_equal(out, expected_1)
            assert runner.last_step_stats is not None

    def test_naive_mode_failure_also_unpublishes_stats(self, state):
        injector = FaultInjector([FaultSpec("crash", island=0, step=0)])
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=2,
            reuse_buffers=False, fault_injector=injector,
        ) as runner:
            with pytest.raises(IslandFailure):
                runner.step(_arrays(state))
            assert runner.last_step_stats is None


class TestGracefulDegradation:
    def test_broken_pool_degrades_to_serial(self, state):
        expected = MpdataSolver(SHAPE).run(state, 2)

        class BrokenPool:
            def submit(self, *args, **kwargs):
                raise RuntimeError("cannot schedule new futures")

            def shutdown(self, wait=True):
                pass

        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3, threads=3,
            reuse_buffers=True, reuse_output=True,
        ) as runner:
            runner._pool = BrokenPool()
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)
            assert runner.degraded
            arrays["x"] = runner.step(arrays, changed={"x"})
            np.testing.assert_array_equal(arrays["x"], expected)
        assert runner.fault_stats.degraded_steps == 2

    def test_pool_breaking_mid_submit_degrades_cleanly(self, state):
        """Some islands were already submitted when the pool broke; the
        serial fallback must not race them and still yields exact output."""
        from concurrent.futures import Future

        expected = MpdataSolver(SHAPE).run(state, 1)

        class HalfBrokenPool:
            def __init__(self):
                self.calls = 0

            def submit(self, fn, *args):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("pool broke mid-submit")
                future = Future()
                future.set_result(fn(*args))  # first island already ran
                return future

            def shutdown(self, wait=True):
                pass

        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3, threads=3,
            reuse_buffers=True, reuse_output=True,
        ) as runner:
            runner._pool = HalfBrokenPool()
            out = runner.step(_arrays(state))
            assert runner.degraded
            np.testing.assert_array_equal(out, expected)

    def test_closed_runner_still_raises_not_degrades(self, state):
        runner = PartitionedRunner(
            mpdata_program(), SHAPE, islands=2, threads=2,
        )
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.step(_arrays(state))
        assert not runner.degraded


class TestSteadyStateWithFaultMachinery:
    def test_zero_allocations_with_injector_and_retry_armed(self, state):
        """The fault-tolerance machinery is free when nothing fails."""
        injector = FaultInjector([])  # armed, never fires
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3,
            reuse_buffers=True, reuse_output=True,
            max_retries=2, fault_injector=injector,
        ) as runner:
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)  # warm-up
            for _ in range(3):
                arrays["x"] = runner.step(arrays, changed={"x"})
                assert runner.last_step_stats.allocations == 0
        assert runner.fault_stats == FaultStats()

    def test_retry_after_warmup_keeps_later_steps_allocation_free(self, state):
        """A retried step pays for its fresh arena; the next steps do not."""
        injector = FaultInjector([FaultSpec("crash", island=1, step=2)])
        with PartitionedRunner(
            mpdata_program(), SHAPE, islands=3,
            reuse_buffers=True, reuse_output=True,
            max_retries=2, fault_injector=injector,
        ) as runner:
            arrays = _arrays(state)
            arrays["x"] = runner.step(arrays)
            for index in range(1, 5):
                arrays["x"] = runner.step(arrays, changed={"x"})
            # Steps after the faulted one are allocation-free again.
            assert runner.last_step_stats.allocations == 0

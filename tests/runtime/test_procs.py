"""Tests for the ``procs`` backend: true multi-core islands.

Covers bit-identity of the process-parallel backend against the
interpreter under every halo policy, real SIGKILL crash recovery through
:class:`ResilientExecutor` (the worker actually dies; the respawn rebinds
shared memory), steady-state zero-allocation stepping in the parent,
worker multiplexing, shared-memory teardown (no leaked ``/dev/shm``
segments on normal exit, crash recovery, abandonment, or SIGINT), config
validation, and thread-safe telemetry recording.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import threading
import weakref
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import build_parser
from repro.mpdata import random_state
from repro.mpdata.stages import FIELD_X
from repro.runtime import (
    BACKENDS,
    EngineConfig,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InMemorySink,
    JsonlSink,
    MpdataIslandSolver,
    ProcsBackend,
    SharedArena,
    Telemetry,
)
from repro.runtime.procs import SEGMENT_PREFIX, live_segment_names

SHAPE = (16, 12, 8)


def _shm_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _trajectory(config, steps=50, islands=2, telemetry=None, injector=None):
    state = random_state(SHAPE, seed=7)
    with MpdataIslandSolver(
        SHAPE,
        islands,
        config=config,
        telemetry=telemetry,
        fault_injector=injector,
    ) as solver:
        final = np.array(solver.run(state, steps), copy=True)
        stats = replace(solver.runner.fault_stats)
    return final, stats


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm clean of procs segments."""
    before = set(_shm_segments())
    yield
    leaked = set(_shm_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    assert not live_segment_names()


class TestProcsBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self):
        final, _ = _trajectory(EngineConfig(backend="interpreter"))
        return final

    def test_recompute_bit_identical_50_steps(self, reference):
        final, _ = _trajectory(EngineConfig(backend="procs"))
        assert np.array_equal(final, reference)

    def test_exchange_bit_identical_50_steps(self, reference):
        final, _ = _trajectory(
            EngineConfig(backend="procs", halo="exchange")
        )
        assert np.array_equal(final, reference)

    def test_hybrid_bit_identical_50_steps(self, reference):
        final, _ = _trajectory(
            EngineConfig(backend="procs", halo="hybrid", halo_threshold=200)
        )
        assert np.array_equal(final, reference)

    def test_interpreter_inner_bit_identical(self, reference):
        final, _ = _trajectory(
            EngineConfig(backend="procs", procs_inner="interpreter"),
            steps=10,
        )
        ref10, _ = _trajectory(EngineConfig(), steps=10)
        assert np.array_equal(final, ref10)

    def test_workers_fewer_than_islands(self, reference):
        final, _ = _trajectory(
            EngineConfig(backend="procs", workers=2), islands=4
        )
        ref4, _ = _trajectory(EngineConfig(), islands=4)
        assert np.array_equal(final, ref4)

    def test_non_reuse_mode_bit_identical(self, reference):
        final, _ = _trajectory(
            EngineConfig(
                backend="procs", reuse_buffers=False, reuse_output=False
            ),
            steps=5,
        )
        ref5, _ = _trajectory(EngineConfig(), steps=5)
        assert np.array_equal(final, ref5)


class TestProcsSteadyState:
    def test_zero_parent_allocations_per_step(self):
        state = random_state(SHAPE, seed=7)
        config = EngineConfig(backend="procs", reuse_output=True)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            arrays = solver._arrays(state)
            arrays[FIELD_X] = solver.runner.step(arrays)  # warm-up
            for _ in range(3):
                arrays[FIELD_X] = solver.runner.step(
                    arrays, changed={FIELD_X}
                )
                assert solver.last_step_stats.allocations == 0

    def test_zero_allocations_under_exchange(self):
        state = random_state(SHAPE, seed=7)
        config = EngineConfig(
            backend="procs", halo="exchange", reuse_output=True
        )
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            arrays = solver._arrays(state)
            arrays[FIELD_X] = solver.runner.step(arrays)
            arrays[FIELD_X] = solver.runner.step(arrays, changed={FIELD_X})
            stats = solver.last_step_stats
            assert stats.allocations == 0
            assert stats.exchanged_bytes > 0

    def test_threads_bumped_to_island_count(self):
        config = EngineConfig(backend="procs", threads=1)
        with MpdataIslandSolver(SHAPE, 4, config=config) as solver:
            assert solver.runner.threads == 4


class TestProcsCrashRecovery:
    """A SIGKILLed worker is a real fault, recovered bit-identically."""

    @pytest.fixture(scope="class")
    def reference(self):
        final, _ = _trajectory(EngineConfig(backend="interpreter"))
        return final

    def test_sigkill_recovery_recompute(self, reference):
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            fault_specs=("kill@island=1,step=7",),
        )
        final, stats = _trajectory(config)
        assert stats.injected_kills == 1
        assert stats.retries == 1
        assert stats.retry_successes == 1
        assert np.array_equal(final, reference)

    def test_sigkill_recovery_exchange(self, reference):
        config = EngineConfig(
            backend="procs",
            halo="exchange",
            max_retries=3,
            fault_specs=("kill@island=0,step=11",),
        )
        final, stats = _trajectory(config)
        assert stats.injected_kills == 1
        assert stats.retry_successes >= 1
        assert np.array_equal(final, reference)

    def test_sigkill_on_multiplexed_worker(self, reference):
        # Two islands share the killed worker: both must come back.
        config = EngineConfig(
            backend="procs",
            workers=2,
            max_retries=3,
            fault_specs=("kill@island=2,step=5",),
        )
        final, stats = _trajectory(config, islands=4)
        ref4, _ = _trajectory(EngineConfig(), islands=4)
        assert stats.injected_kills == 1
        assert np.array_equal(final, ref4)

    def test_worker_pid_changes_after_kill(self):
        state = random_state(SHAPE, seed=7)
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            fault_specs=("kill@island=1,step=2",),
        )
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            backend = solver.runner.backend
            pids_before = [h.process.pid for h in backend._handles]
            solver.run(random_state(SHAPE, seed=7), 5)
            pids_after = [h.process.pid for h in backend._handles]
            assert pids_before[0] == pids_after[0]  # island 0 untouched
            assert pids_before[1] != pids_after[1]  # island 1 respawned

    def test_kill_exhausting_retries_fails_the_step(self):
        config = EngineConfig(
            backend="procs",
            max_retries=1,
            fault_specs=("kill@island=0,step=1,attempts=5",),
        )
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            with pytest.raises(Exception, match="island 0"):
                solver.run(state, 3)

    def test_kill_degrades_to_crash_in_process_backends(self):
        # In-process backends have no separate executor to kill, so the
        # kill fault must degrade to an injected crash and still recover.
        config = EngineConfig(
            backend="compiled",
            max_retries=2,
            fault_specs=("kill@island=1,step=3",),
        )
        final, stats = _trajectory(config, steps=10)
        ref, _ = _trajectory(EngineConfig(), steps=10)
        assert stats.injected_kills == 1
        assert stats.retry_successes == 1
        assert np.array_equal(final, ref)

    def test_kill_with_no_retry_budget_raises(self):
        injector = FaultInjector([FaultSpec(kind="kill", island=0, step=0)])
        config = EngineConfig(backend="compiled")
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE, 2, config=config, fault_injector=injector
        ) as solver:
            with pytest.raises(Exception):
                solver.run(state, 1)


class TestSharedMemoryTeardown:
    def test_normal_close_unlinks_everything(self):
        config = EngineConfig(backend="procs")
        state = random_state(SHAPE, seed=7)
        solver = MpdataIslandSolver(SHAPE, 2, config=config)
        backend = solver.runner.backend
        solver.run(state, 2)
        assert backend._arena.segment_names  # segments existed
        solver.close()
        assert not _shm_segments()
        assert not live_segment_names()

    def test_close_is_idempotent(self):
        config = EngineConfig(backend="procs")
        solver = MpdataIslandSolver(SHAPE, 2, config=config)
        solver.close()
        solver.close()
        assert not _shm_segments()

    def test_abandoned_backend_is_finalized_by_gc(self):
        config = EngineConfig(backend="procs")
        solver = MpdataIslandSolver(SHAPE, 2, config=config)
        solver.run(random_state(SHAPE, seed=7), 1)
        finalizer = solver.runner.backend._finalizer
        del solver  # never closed: the weakref.finalize guard must fire
        import gc

        gc.collect()
        assert not finalizer.alive
        assert not _shm_segments()

    def test_arena_close_survives_live_views(self):
        arena = SharedArena(f"{SEGMENT_PREFIX}-test-{os.getpid()}")
        array = arena.allocate((4, 4), np.float64)
        array[...] = 1.0
        arena.close()  # view still alive: unlink must happen anyway
        assert not _shm_segments()
        assert not live_segment_names()
        del array
        arena.close()  # idempotent

    def test_segments_cleaned_after_crash_recovery(self):
        config = EngineConfig(
            backend="procs",
            max_retries=2,
            fault_specs=("kill@island=0,step=1",),
        )
        _trajectory(config, steps=4)
        assert not _shm_segments()

    def test_keyboard_interrupt_leaves_no_segments(self, tmp_path):
        """SIGINT mid-run: the interpreter-exit finalizer must unlink."""
        script = tmp_path / "interrupted.py"
        script.write_text(
            "import signal, sys\n"
            "from repro.mpdata import random_state\n"
            "from repro.runtime import EngineConfig, MpdataIslandSolver\n"
            "shape = (16, 12, 8)\n"
            "solver = MpdataIslandSolver(\n"
            "    shape, 2, config=EngineConfig(backend='procs'))\n"
            "state = random_state(shape, seed=7)\n"
            "solver.run(state, 1)\n"
            "print('READY', flush=True)\n"
            "solver.run(state, 10_000)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert not _shm_segments()


class TestProcsConfig:
    def test_workers_requires_procs_backend(self):
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(backend="compiled", workers=2)

    def test_pin_workers_requires_procs_backend(self):
        with pytest.raises(ValueError, match="pin_workers"):
            EngineConfig(backend="interpreter", pin_workers=True)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(backend="procs", workers=0)

    def test_unknown_inner_rejected(self):
        with pytest.raises(ValueError, match="procs_inner"):
            EngineConfig(backend="procs", procs_inner="tiled")

    def test_round_trip(self):
        config = EngineConfig(
            backend="procs", workers=3, pin_workers=True,
            procs_inner="interpreter",
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_registered_in_backends(self):
        assert BACKENDS["procs"] is ProcsBackend

    def test_cli_backend_procs(self):
        parser = build_parser()
        args = parser.parse_args(
            ["engine", "--backend", "procs", "--workers", "2",
             "--pin-workers"]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.backend == "procs"
        assert config.workers == 2
        assert config.pin_workers is True
        assert config.procs_inner == "interpreter"

    def test_cli_backend_procs_compiled_inner(self):
        parser = build_parser()
        args = parser.parse_args(
            ["engine", "--backend", "procs", "--compiled"]
        )
        config = EngineConfig.from_cli_args(args)
        assert config.backend == "procs"
        assert config.procs_inner == "compiled"

    def test_cli_workers_without_procs_rejected(self):
        from repro.cli import _validate_engine_args

        parser = build_parser()
        args = parser.parse_args(["engine", "--workers", "2"])
        with pytest.raises(SystemExit):
            _validate_engine_args(parser, args)

    def test_cli_procs_with_tiled_rejected(self):
        from repro.cli import _validate_engine_args

        parser = build_parser()
        args = parser.parse_args(
            ["engine", "--backend", "procs", "--tiled"]
        )
        with pytest.raises(SystemExit):
            _validate_engine_args(parser, args)

    def test_workers_clamped_to_island_count(self):
        config = EngineConfig(backend="procs", workers=64)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            assert solver.runner.backend.workers == 2


class TestTelemetryConcurrency:
    """StepEvents from many producer threads merge into intact records."""

    def test_jsonl_rows_never_interleave(self, tmp_path):
        from repro.runtime import StepEvent, StepStats

        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(path)
        telemetry = Telemetry([sink])
        steps_per_thread = 50

        def producer(thread_id):
            for i in range(steps_per_thread):
                telemetry.record(
                    StepEvent(
                        step=thread_id * steps_per_thread + i,
                        wall_seconds=0.001,
                        stats=StepStats(allocations=thread_id, reused=i),
                    )
                )

        threads = [
            threading.Thread(target=producer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        telemetry.close()

        lines = path.read_text().splitlines()
        assert len(lines) == 4 * steps_per_thread
        seen = set()
        for line in lines:
            row = json.loads(line)  # raises if a row was torn
            seen.add(row["step"])
        assert len(seen) == 4 * steps_per_thread

    def test_procs_step_events_merge_island_timings(self, tmp_path):
        path = tmp_path / "procs.jsonl"
        sink = InMemorySink()
        telemetry = Telemetry([sink, JsonlSink(path)])
        config = EngineConfig(backend="procs", collect_timings=True)
        _trajectory(config, steps=3, telemetry=telemetry)

        assert len(sink.events) == 3
        for event in sink.events:
            timings = event.stats.timings
            assert timings is not None
            assert len(timings.island_seconds) == 2  # one entry per island
            assert all(s > 0 for s in timings.island_seconds)
            assert timings.stage_seconds  # worker stage times crossed over
        rows = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(rows) == 3
        assert all(len(r["timings"]["island_seconds"]) == 2 for r in rows)


class TestProcsRecoveryIntegration:
    """Rollback-and-replay (checkpointed recovery) over worker processes."""

    def test_corrupt_fault_rolls_back_over_procs(self):
        from repro.runtime import RecoveryPolicy

        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE, 2, config=EngineConfig(backend="interpreter")
        ) as ref_solver:
            expected = np.array(ref_solver.run(state, 12), copy=True)

        config = EngineConfig(
            backend="procs",
            max_retries=2,
            fault_specs=("corrupt@island=1,step=8",),
        )
        policy = RecoveryPolicy(checkpoint_every=4, max_rollbacks=2)
        with MpdataIslandSolver(SHAPE, 2, config=config) as solver:
            final = solver.run(state, 12, recovery=policy)
            report = solver.last_recovery_report
        assert report.rollbacks == 1
        assert np.array_equal(final, expected)

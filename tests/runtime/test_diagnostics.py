"""Tests for the run-diagnostics recorder."""

import numpy as np
import pytest

from repro.mpdata import MpdataSolver, random_state, translation_state
from repro.runtime import MpdataIslandSolver, RunRecorder

SHAPE = (14, 12, 8)


class TestRunRecorder:
    def test_records_every_step(self):
        state = random_state(SHAPE, seed=5)
        history = RunRecorder(MpdataSolver(SHAPE)).run(state, 4)
        assert len(history.steps) == 4
        assert [d.step for d in history.steps] == [1, 2, 3, 4]

    def test_mass_conserved_along_the_whole_trajectory(self):
        state = random_state(SHAPE, seed=6)
        history = RunRecorder(MpdataSolver(SHAPE)).run(state, 5)
        assert history.mass_drift < 1e-10 * abs(history.initial_mass)

    def test_positivity_along_the_whole_trajectory(self):
        state = random_state(SHAPE, seed=7)
        history = RunRecorder(MpdataSolver(SHAPE)).run(state, 5)
        assert history.global_minimum >= 0.0

    def test_variance_decays_for_uniform_translation(self):
        state = translation_state((24, 12, 8))
        history = RunRecorder(MpdataSolver((24, 12, 8))).run(state, 6)
        assert history.monotone_variance_decay()

    def test_final_matches_plain_run(self):
        state = random_state(SHAPE, seed=8)
        history = RunRecorder(MpdataSolver(SHAPE)).run(state, 3)
        plain = MpdataSolver(SHAPE).run(state, 3)
        np.testing.assert_array_equal(history.final, plain)

    def test_works_with_island_solver(self):
        state = random_state(SHAPE, seed=9)
        history = RunRecorder(MpdataIslandSolver(SHAPE, 3)).run(state, 2)
        assert history.mass_drift < 1e-10 * abs(history.initial_mass)

    def test_zero_steps(self):
        state = random_state(SHAPE, seed=10)
        history = RunRecorder(MpdataSolver(SHAPE)).run(state, 0)
        assert history.steps == ()
        np.testing.assert_array_equal(history.final, state.x)

    def test_negative_steps_rejected(self):
        state = random_state(SHAPE, seed=11)
        with pytest.raises(ValueError):
            RunRecorder(MpdataSolver(SHAPE)).run(state, -1)

"""Tests for temporal blocking: ``--sync-every s`` deep-halo super-steps.

The acceptance bar is the same bit-identity that anchors the rest of the
reproduction: a trajectory advanced in super-steps of ``s`` — deeper
ghosts, one synchronization per ``s`` time steps — must equal the
per-step-sync trajectory to the last bit, for every backend and halo
policy, including partial super-steps when ``s`` does not divide the
step count.  On top sit the supporting contracts: config and grid
validation, the per-step-normalized adaptive deadline, super-steps as
the recovery replay unit, the run-level sync ledger in telemetry, and
the measured ``sync_every`` autotuner.
"""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.mpdata import random_state
from repro.mpdata.stages import FIELD_X
from repro.runtime import (
    EngineConfig,
    FaultInjector,
    FaultSpec,
    InMemorySink,
    MpdataIslandSolver,
    RecoveryPolicy,
    TableSink,
    Telemetry,
    native_available,
)
from repro.runtime.procs import DeadlineClock
from repro.stencil import tune_sync_every

SHAPE = (16, 16, 16)  # every axis >= 12: the s=4 composed halo fits
STEPS = 50  # not divisible by 4: s=4 ends on a partial super-step


def _config(backend, halo, sync_every, **kwargs):
    if halo == "hybrid":
        kwargs.setdefault("halo_threshold", 64)
    if backend == "tiled":
        kwargs.setdefault("block_shape", (8, 8, 8))
    return EngineConfig(
        backend=backend, halo=halo, sync_every=sync_every, **kwargs
    )


def _trajectory(config, steps=STEPS, islands=2, telemetry=None, seed=7):
    state = random_state(SHAPE, seed=seed)
    with MpdataIslandSolver(
        SHAPE, islands, config=config, telemetry=telemetry
    ) as solver:
        final = np.array(solver.run(state, steps), copy=True)
    return final


@pytest.fixture(scope="module")
def reference():
    return _trajectory(EngineConfig(backend="compiled"))


class TestBitIdentityMatrix:
    """ISSUE acceptance: 50-step trajectories bit-identical for every
    s in {1, 2, 4} x {recompute, exchange, hybrid} x every backend."""

    @pytest.mark.parametrize("backend", [
        "interpreter", "compiled", "tiled", "procs",
        pytest.param("native", marks=pytest.mark.skipif(
            not native_available(),
            reason="needs cffi and a system C compiler",
        )),
    ])
    @pytest.mark.parametrize("halo", ["recompute", "exchange", "hybrid"])
    @pytest.mark.parametrize("sync_every", [1, 2, 4])
    def test_super_steps_match_per_step_sync(
        self, reference, backend, halo, sync_every
    ):
        final = _trajectory(_config(backend, halo, sync_every))
        np.testing.assert_array_equal(final, reference)


class TestPartialSuperSteps:
    def test_remainder_of_one_runs_through_super_path(self, reference):
        """5 steps at s=4 is one full super-step plus a remainder of 1;
        the super-prepared backend has no per-step state, so even that
        single step must run the composed path — and stay bit-exact."""
        expected = _trajectory(EngineConfig(backend="compiled"), steps=5)
        actual = _trajectory(_config("compiled", "recompute", 4), steps=5)
        np.testing.assert_array_equal(actual, expected)

    def test_step_count_within_super_step_is_validated(self):
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE, 2, config=_config("compiled", "recompute", 2)
        ) as solver:
            arrays = solver._arrays(state)
            arrays[FIELD_X] = np.asarray(
                state.x, dtype=solver.runner.dtype
            )
            with pytest.raises(ValueError, match="steps"):
                solver.runner.step(arrays, steps=3)
            with pytest.raises(ValueError, match="steps"):
                solver.runner.step(arrays, steps=0)


class TestValidation:
    def test_sync_every_must_be_positive(self):
        with pytest.raises(ValueError, match="sync_every"):
            EngineConfig(sync_every=0)

    def test_open_boundary_rejected(self):
        """Open boundaries clamp the composed halo at the domain edge,
        which is not expressible with the rectangular ghost frame yet."""
        with pytest.raises(ValueError, match="periodic"):
            EngineConfig(sync_every=2, boundary="open")

    def test_grid_smaller_than_composed_halo_rejected(self):
        # s=4 composes MPDATA's depth-3 halo to 12; axis 2 has 8 cells.
        with pytest.raises(ValueError, match="sync-every"):
            MpdataIslandSolver(
                (16, 16, 8), 2, config=EngineConfig(sync_every=4)
            )

    def test_round_trips_through_json(self):
        config = EngineConfig(sync_every=4)
        assert EngineConfig.from_dict(config.to_dict()).sync_every == 4


class TestDeadlineClockPerStepNormalization:
    def test_observe_normalizes_by_steps(self):
        clock = DeadlineClock(None, 4.0, floor=0.0)
        clock.observe(8.0, steps=4)
        assert clock.ewma == pytest.approx(2.0)

    def test_current_scales_with_steps(self):
        clock = DeadlineClock(None, 4.0, floor=0.0)
        clock.observe(2.0)
        assert clock.current(steps=4) == pytest.approx(32.0)
        explicit = DeadlineClock(2.5, None)
        assert explicit.current(steps=4) == pytest.approx(10.0)

    def test_warmup_grace_is_not_scaled(self):
        """A fresh worker's grace covers state rebuild, which happens
        once regardless of s — scaling it by s would let a wedge inside
        a long super-step hide behind an s-times-longer deadline."""
        clock = DeadlineClock(None, 8.0, warmup=60.0)
        assert clock.current(steps=8) == 60.0
        clock.observe(0.5, steps=1)
        assert clock.current(fresh=True, steps=8) == 60.0

    def test_mixed_super_step_depths_share_one_per_step_ewma(self):
        clock = DeadlineClock(None, 1.0, floor=0.0)
        clock.observe(4.0, steps=4)  # 1.0 per step
        clock.observe(3.0, steps=1)  # ewma = 1 + 0.25 * 2 = 1.5
        assert clock.ewma == pytest.approx(1.5)


class TestRecoveryWithSuperSteps:
    def test_rollback_replays_super_steps_bit_identical(self, reference):
        """The super-step is the replay unit: a corruption detected at a
        super-step boundary rolls back to the checkpoint and replays in
        strides of s, landing on the fault-free bits."""
        # Step 4 is a super-step base index at s=2 (bases 0,2,4,...).
        injector = FaultInjector([FaultSpec("corrupt", island=1, step=4)])
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE,
            2,
            config=_config("compiled", "recompute", 2),
            fault_injector=injector,
        ) as solver:
            actual = solver.run(
                state, STEPS, recovery=RecoveryPolicy(checkpoint_every=3)
            )
            report = solver.last_recovery_report
        np.testing.assert_array_equal(actual, reference)
        assert report.rollbacks == 1
        assert report.completed_steps == STEPS

    def test_checkpoints_written_when_super_step_crosses_interval(
        self, tmp_path
    ):
        """checkpoint_every=3 never coincides with an s=2 super-step
        boundary except at multiples of 6; crossing still checkpoints."""
        state = random_state(SHAPE, seed=7)
        policy = RecoveryPolicy(
            checkpoint_every=3, checkpoint_dir=tmp_path
        )
        with MpdataIslandSolver(
            SHAPE, 2, config=_config("compiled", "recompute", 2)
        ) as solver:
            solver.run(state, 10, recovery=policy)
            report = solver.last_recovery_report
        # Initial state plus every crossing before the final step:
        # super-step ends at 4 (crosses 3), 6 (crosses 6), 10 (final,
        # not checkpointed) -> steps 0, 4, 6, plus the crossing at 8>...
        steps = sorted(
            int(p.name.split("-")[1].split(".")[0])
            for p in tmp_path.iterdir()
        )
        assert steps[0] == 0
        assert 4 in steps  # the 2..4 super-step crossed checkpoint 3
        assert report.checkpoints_written == len(steps)


class TestRunLevelSyncLedger:
    def test_steps_advanced_and_syncs_per_step(self):
        sink = InMemorySink()
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE,
            2,
            config=_config("compiled", "recompute", 2),
            telemetry=Telemetry([sink]),
        ) as solver:
            solver.run(state, 6)
            runner = solver.runner
            assert runner.total_steps_advanced == 6
            assert runner.total_syncs == 3  # one barrier per super-step
            assert runner.syncs_per_step == pytest.approx(0.5)
        assert [e.stats.steps_advanced for e in sink.events] == [2, 2, 2]
        assert all(
            e.stats.syncs_per_step == pytest.approx(0.5)
            for e in sink.events
        )
        assert all(
            e.stats.to_dict()["steps_advanced"] == 2 for e in sink.events
        )

    def test_table_sink_totals_and_summary(self):
        sink = TableSink()
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE,
            2,
            config=_config("compiled", "recompute", 2),
            telemetry=Telemetry([sink]),
        ) as solver:
            solver.run(state, 6)
        assert sink.total_steps == 6
        assert sink.total_syncs == 3
        assert sink.summary() == "total: 6 steps, 3 syncs (0.500 syncs/step)"
        assert sink.summary() in sink.render()

    def test_steady_state_super_steps_do_not_allocate(self):
        """ISSUE acceptance: 0 steady-state allocations per step in the
        parent, with the deeper ghost frames and composed plans."""
        sink = InMemorySink()
        state = random_state(SHAPE, seed=7)
        with MpdataIslandSolver(
            SHAPE,
            2,
            config=_config("compiled", "recompute", 2, reuse_output=True),
            telemetry=Telemetry([sink]),
        ) as solver:
            solver.run(state, 8)
        assert all(e.stats.allocations == 0 for e in sink.events[1:])


class TestSyncEveryAutotuner:
    def test_measured_sweep_picks_a_runnable_depth(self):
        result = tune_sync_every(
            SHAPE,
            islands=2,
            candidates=(1, 2, 8),  # s=8 needs 24-cell axes: skipped
            steps=2,
            backend="compiled",
        )
        assert result.skipped == (8,)
        assert result.best in (1, 2)
        assert len(result.ranking) == 2
        assert result.best_seconds_per_step > 0
        assert result.speedup_over_unblocked >= 1.0

    def test_no_runnable_candidate_raises(self):
        with pytest.raises(ValueError, match="fits grid"):
            tune_sync_every(SHAPE, islands=2, candidates=(16,), steps=1)


class TestCli:
    def test_engine_flags_parse_and_reach_the_config(self):
        args = build_parser().parse_args(
            ["engine", "--sync-every", "2", "--telemetry-table"]
        )
        assert args.sync_every == 2
        assert args.telemetry_table
        assert EngineConfig.from_cli_args(args).sync_every == 2

    def test_sync_every_defaults_to_per_step(self):
        args = build_parser().parse_args(["engine"])
        assert args.sync_every == 1
        assert not args.telemetry_table

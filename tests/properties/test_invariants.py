"""Property-based tests of the library's central invariants.

The heart of the reproduction is the claim that *recomputing the transitive
halo is equivalent to communicating it* — not approximately, but to the
last bit, for any stencil program.  These tests generate random multi-stage
programs and random partitionings and check the equivalence, plus the
redundancy-accounting identities Table 2 relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Variant, partition_domain, redundancy_report
from repro.mpdata import MpdataState, random_state
from repro.runtime import PartitionedRunner, verify_islands
from repro.stencil import (
    Access,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    full_box,
    required_regions,
)

# ----------------------------------------------------------------------
# Random stencil programs
# ----------------------------------------------------------------------
offsets = st.tuples(
    st.integers(-2, 2), st.integers(-2, 2), st.integers(-1, 1)
)


@st.composite
def programs(draw):
    """A random chain of 2-5 stages, each reading earlier fields at random
    offsets (sums and products, so values stay finite)."""
    n_stages = draw(st.integers(2, 5))
    available = ["x0", "x1"]
    stages = []
    for index in range(n_stages):
        n_reads = draw(st.integers(1, 3))
        expr = None
        for read_index in range(n_reads):
            # The first read always takes the newest field, so every stage
            # feeds the chain and no stage is dead.
            if read_index == 0:
                field = available[-1]
            else:
                field = draw(st.sampled_from(available))
            access = Access(field, draw(offsets))
            term = access * draw(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
            )
            expr = term if expr is None else expr + term
        name = f"t{index}"
        stages.append(Stage(f"s{index}", name, expr))
        available.append(name)
    return StencilProgram.build(
        "random",
        inputs=(Field("x0", FieldRole.INPUT), Field("x1", FieldRole.INPUT)),
        stages=tuple(stages),
        outputs=(stages[-1].output,),
    )


@settings(max_examples=40, deadline=None)
@given(
    program=programs(),
    islands=st.integers(1, 4),
    variant=st.sampled_from([Variant.A, Variant.B]),
    seed=st.integers(0, 1000),
)
def test_partitioned_execution_bit_exact_for_random_programs(
    program, islands, variant, seed
):
    """Islands-of-cores is semantics-preserving for ANY stencil program."""
    shape = (13, 11, 5)
    rng = np.random.default_rng(seed)
    arrays = {
        "x0": rng.standard_normal(shape),
        "x1": rng.standard_normal(shape),
    }
    whole = PartitionedRunner(program, shape, islands=1)
    split = PartitionedRunner(program, shape, islands=islands, variant=variant)
    np.testing.assert_array_equal(whole.step(arrays), split.step(arrays))


@settings(max_examples=25, deadline=None)
@given(program=programs(), islands=st.integers(2, 5))
def test_redundancy_identities(program, islands):
    """Accounting identities for any program/partition:

    * own points across islands partition the baseline exactly,
    * extra points are non-negative,
    * extra + own equals the halo plans' compute totals.
    """
    domain = full_box((20, 16, 4))
    partition = partition_domain(domain, islands, Variant.A)
    report = redundancy_report(program, partition)
    assert sum(i.own_points for i in report.islands) == report.baseline_points
    assert report.extra_points >= 0
    for island in report.islands:
        plan = required_regions(program, island.part, domain=domain)
        assert island.total_points == plan.compute_points()


@settings(max_examples=25, deadline=None)
@given(program=programs())
def test_redundancy_linear_in_cuts(program):
    """Extra points grow exactly linearly with the number of interior cuts
    when parts are wider than the halo (the shape of Table 2)."""
    domain = full_box((48, 16, 4))
    extras = []
    for islands in (2, 3, 4):
        partition = partition_domain(domain, islands, Variant.A)
        extras.append(redundancy_report(program, partition).extra_points)
    per_cut = extras[0]
    assert extras[1] == 2 * per_cut
    assert extras[2] == 3 * per_cut


@settings(max_examples=20, deadline=None)
@given(
    islands=st.integers(1, 4),
    variant=st.sampled_from([Variant.A, Variant.B]),
    steps=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_mpdata_islands_bit_exact(islands, variant, steps, seed):
    """The headline invariant on the real application."""
    shape = (14, 12, 8)
    state = random_state(shape, seed=seed)
    result = verify_islands(
        shape, state, islands=islands, variant=variant, steps=steps
    )
    assert result.bit_exact, result


@settings(max_examples=30, deadline=None)
@given(
    lo=st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
    hi=st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
)
def test_ghost_fill_matches_numpy_pad(lo, hi):
    from repro.mpdata import extend_array

    rng = np.random.default_rng(0)
    interior = rng.random((5, 4, 6))
    periodic = extend_array(interior, lo, hi, "periodic")
    np.testing.assert_array_equal(
        periodic.data, np.pad(interior, tuple(zip(lo, hi)), mode="wrap")
    )
    open_bc = extend_array(interior, lo, hi, "open")
    np.testing.assert_array_equal(
        open_bc.data, np.pad(interior, tuple(zip(lo, hi)), mode="edge")
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 4))
def test_mpdata_conservation_and_positivity(seed, steps):
    """Physical invariants hold for arbitrary CFL-stable random states."""
    from repro.mpdata import reference_run

    shape = (12, 10, 8)
    state = random_state(shape, seed=seed)
    out = reference_run(state, steps)
    assert out.min() >= 0.0
    np.testing.assert_allclose(
        (state.h * out).sum(), (state.h * state.x).sum(), rtol=1e-11
    )

"""Property tests of the computation/communication identity.

Sect. 3.2 of the paper prices scenario 1 (ship boundary planes each
stage) and scenario 2 (recompute the transitive halo) from the same
backward analysis: *the points one ships are exactly the points the
other duplicates*.  These properties check that identity for random
stencil programs — analytically on the ledger, and end-to-end on the
runner, where the telemetry's measured byte counter must equal the
model's prediction while the two policies produce bit-identical output.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    Variant,
    build_halo_ledger,
    partition_domain,
    partition_grid_2d,
    redundancy_report,
)
from repro.mpdata import GhostSpec
from repro.runtime import EngineConfig, InMemorySink, PartitionedRunner, Telemetry
from repro.stencil import full_box

from .test_invariants import programs


@settings(max_examples=25, deadline=None)
@given(
    program=programs(),
    islands=st.integers(1, 4),
    variant=st.sampled_from([Variant.A, Variant.B]),
    shape=st.tuples(
        st.integers(10, 18), st.integers(8, 14), st.integers(3, 6)
    ),
)
def test_exchanged_points_equal_recomputed_extras(
    program, islands, variant, shape
):
    """Ledger form of the identity, physical clip: what exchange ships ==
    what recompute duplicates == Table 2's extra elements."""
    partition = partition_domain(full_box(shape), islands, variant)
    exchange = build_halo_ledger(program, partition, policy="exchange")
    recompute = build_halo_ledger(program, partition, policy="recompute")
    extras = redundancy_report(program, partition).extra_points
    assert exchange.exchanged_points() == extras
    assert recompute.redundant_points == extras
    assert exchange.redundant_points == 0


@settings(max_examples=15, deadline=None)
@given(
    program=programs(),
    grid=st.tuples(st.integers(1, 3), st.integers(1, 3)),
)
def test_identity_holds_on_2d_grids(program, grid):
    partition = partition_grid_2d(full_box((14, 12, 4)), *grid)
    exchange = build_halo_ledger(program, partition, policy="exchange")
    extras = redundancy_report(program, partition).extra_points
    assert exchange.exchanged_points() == extras


@settings(max_examples=15, deadline=None)
@given(
    program=programs(),
    islands=st.integers(2, 4),
    variant=st.sampled_from([Variant.A, Variant.B]),
    shape=st.tuples(
        st.integers(10, 16), st.integers(8, 12), st.integers(3, 5)
    ),
    seed=st.integers(0, 1000),
)
def test_measured_bytes_match_the_model_and_output_is_bit_exact(
    program, islands, variant, shape, seed
):
    """Runner form of the identity: the telemetry byte counter under
    ``halo="exchange"`` equals the model's predicted shipped volume (over
    the runner's ghost-extended domain, where the prediction is the
    recompute ledger's redundant points), and the trajectory matches
    recompute bit-for-bit."""
    # Periodic ghost filling wraps at most once, so the program's
    # transitive halo must fit inside the domain on every axis; a deep
    # chained stencil on a shallow axis is not a runnable configuration.
    ghosts = GhostSpec.for_program(program, shape)
    assume(
        all(g <= n for g, n in zip(ghosts.lo, shape))
        and all(g <= n for g, n in zip(ghosts.hi, shape))
    )
    rng = np.random.default_rng(seed)
    arrays = {
        "x0": rng.standard_normal(shape),
        "x1": rng.standard_normal(shape),
    }
    with PartitionedRunner(
        program, shape, islands=islands, variant=variant
    ) as recompute_runner:
        expected = np.array(recompute_runner.step(arrays), copy=True)
        predicted = (
            recompute_runner.decomposition.halo_ledger("recompute").redundant_points
            * recompute_runner.dtype.itemsize
        )
    sink = InMemorySink()
    with PartitionedRunner(
        program,
        shape,
        islands=islands,
        variant=variant,
        config=EngineConfig(halo="exchange"),
        telemetry=Telemetry([sink]),
    ) as exchange_runner:
        result = exchange_runner.step(arrays)
        ledger = exchange_runner.halo_ledger
        np.testing.assert_array_equal(result, expected)
    measured = sink.events[-1].stats.exchanged_bytes
    assert measured == ledger.exchanged_bytes(exchange_runner.dtype.itemsize)
    assert measured == predicted

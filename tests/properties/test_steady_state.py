"""Property tests for the steady-state execution engine.

The engine's whole claim is "same bits, fewer allocations": `out=`-arena
expression evaluation — interpreted and compiled, ephemeral and persistent
— must be indistinguishable from naive evaluation on every program in the
stencil gallery, and repeat runs over persistent arenas must allocate
nothing.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.stencil import (
    GALLERY,
    ArrayRegion,
    Box,
    EvalArena,
    StageArena,
    compile_plan,
    execute_plan,
    required_regions,
)

TARGET = Box((0, 0, 0), (8, 6, 5))


def naive_execute(program, plan, inputs, dtype=np.float64):
    """The pre-engine interpreter: naive ``Expr.evaluate``, one fresh
    array per stage, NumPy allocating every ufunc intermediate.  Kept in
    the test as the reference semantics the engine must reproduce
    bit-for-bit."""
    storage = dict(inputs)
    for index, stage in enumerate(program.stages):
        compute = plan.stage_boxes[index]
        if compute.is_empty():
            continue

        def resolve(field_name, offset):
            return storage[field_name].view(compute.shift(offset))

        value = stage.expr.evaluate(resolve)  # no out=: naive path
        out = np.empty(compute.shape, dtype=dtype)
        out[...] = value
        storage[stage.output] = ArrayRegion(out, compute)
    return {f.name: storage[f.name] for f in program.output_fields}


def _inputs_for(program, plan, seed):
    rng = np.random.default_rng(seed)
    inputs = {}
    for field in program.input_fields:
        box = plan.input_boxes[field.name]
        if box.is_empty():
            continue
        inputs[field.name] = ArrayRegion(rng.standard_normal(box.shape), box)
    return inputs


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(sorted(GALLERY)), seed=st.integers(0, 1000))
def test_arena_evaluation_bit_identical_over_gallery(name, seed):
    """Interpreted (ephemeral + persistent arenas) and compiled
    (ephemeral + persistent workspaces) evaluation all match naive
    evaluation exactly, on every gallery program."""
    program = GALLERY[name]()
    plan = required_regions(program, TARGET)
    inputs = _inputs_for(program, plan, seed)
    output = program.output_fields[0].name
    expected = naive_execute(program, plan, inputs)[output].data

    # Interpreted, ephemeral arena (the default execute_plan path).
    plain, _ = execute_plan(program, plan, inputs)
    np.testing.assert_array_equal(plain[output].data, expected)

    # Interpreted, persistent arenas: run twice, second run must both
    # match and allocate nothing.
    arena, scratch = StageArena(), EvalArena()
    execute_plan(program, plan, inputs, arena=arena, scratch=scratch)
    warm, stats = execute_plan(program, plan, inputs, arena=arena, scratch=scratch)
    np.testing.assert_array_equal(warm[output].data, expected)
    assert stats.allocations == 0
    assert stats.scratch_allocations == 0
    assert stats.reused_buffers > 0

    # Compiled, fresh workspace per call.
    compiled = compile_plan(program, plan)
    np.testing.assert_array_equal(compiled(inputs)[output].data, expected)

    # Compiled, persistent workspace: second call is allocation-free and
    # still exact.
    steady = compile_plan(program, plan, reuse_buffers=True)
    steady(inputs)
    workspace = steady.workspace
    allocations_before = workspace.allocations
    np.testing.assert_array_equal(steady(inputs)[output].data, expected)
    assert workspace.allocations == allocations_before


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(sorted(GALLERY)), seed=st.integers(0, 1000))
def test_expr_out_evaluation_matches_naive(name, seed):
    """Expr.evaluate(resolve, out=..., scratch=...) equals naive
    Expr.evaluate(resolve) node-for-node on every gallery stage."""
    program = GALLERY[name]()
    plan = required_regions(program, TARGET)
    inputs = _inputs_for(program, plan, seed)
    storage = dict(inputs)
    scratch = EvalArena()
    for index, stage in enumerate(program.stages):
        compute = plan.stage_boxes[index]
        if compute.is_empty():
            continue

        def resolve(field_name, offset):
            return storage[field_name].view(compute.shift(offset))

        naive = np.empty(compute.shape)
        naive[...] = stage.expr.evaluate(resolve)
        out = np.empty(compute.shape)
        stage.expr.evaluate(resolve, out=out, scratch=scratch)
        np.testing.assert_array_equal(out, naive)
        assert scratch.outstanding == 0  # every scratch buffer released
        storage[stage.output] = ArrayRegion(naive, compute)

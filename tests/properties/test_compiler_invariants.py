"""Property-based tests of the compiler-side invariants.

Random multi-stage programs are pushed through codegen, the transformation
passes and serialization; in every case the observable semantics (array
values, to the last bit) or the structure (program equality) must survive.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.stencil import (
    Access,
    ArrayRegion,
    Box,
    Field,
    FieldRole,
    Stage,
    StencilProgram,
    compile_plan,
    eliminate_dead_stages,
    execute_plan,
    inline_all_temporaries,
    load_program,
    dump_program,
    required_regions,
    schedule_by_levels,
)

offsets = st.tuples(
    st.integers(-2, 2), st.integers(-2, 2), st.integers(-1, 1)
)


@st.composite
def programs(draw):
    """Random dead-stage-free chains over two inputs (see the sibling
    module for the construction)."""
    n_stages = draw(st.integers(2, 5))
    available = ["x0", "x1"]
    stages = []
    for index in range(n_stages):
        n_reads = draw(st.integers(1, 3))
        expr = None
        for read_index in range(n_reads):
            field = (
                available[-1]
                if read_index == 0
                else draw(st.sampled_from(available))
            )
            access = Access(field, draw(offsets))
            term = access * draw(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
            )
            expr = term if expr is None else expr + term
        name = f"t{index}"
        stages.append(Stage(f"s{index}", name, expr))
        available.append(name)
    return StencilProgram.build(
        "random",
        inputs=(Field("x0", FieldRole.INPUT), Field("x1", FieldRole.INPUT)),
        stages=tuple(stages),
        outputs=(stages[-1].output,),
    )


def _inputs_for(program, plan, seed):
    rng = np.random.default_rng(seed)
    out = {}
    for field in program.input_fields:
        box = plan.input_boxes[field.name]
        if box.is_empty():
            continue
        out[field.name] = ArrayRegion(
            rng.standard_normal(box.shape), box
        )
    return out


@settings(max_examples=40, deadline=None)
@given(program=programs(), seed=st.integers(0, 1000))
def test_codegen_bit_exact_for_random_programs(program, seed):
    """Compiled straight-line code computes the same bits as the
    interpreter on any program."""
    target = Box((0, 0, 0), (9, 7, 4))
    plan = required_regions(program, target)
    inputs = _inputs_for(program, plan, seed)
    expected, _ = execute_plan(program, plan, inputs)
    compiled = compile_plan(program, plan)
    actual = compiled(inputs)
    output = program.output_fields[0].name
    np.testing.assert_array_equal(
        actual[output].data, expected[output].data
    )


@settings(max_examples=30, deadline=None)
@given(program=programs(), seed=st.integers(0, 1000))
def test_full_inlining_preserves_values(program, seed):
    """inline_all_temporaries is semantics-preserving for any program."""
    mega = inline_all_temporaries(program)
    assert len(mega.stages) == 1

    target = Box((0, 0, 0), (9, 7, 4))
    plan_orig = required_regions(program, target)
    plan_mega = required_regions(mega, target)
    # The mega plan needs at least as much input as the staged plan.
    seed_inputs = _inputs_for(mega, plan_mega, seed)
    # Widen to the union so both plans can execute on the same data.
    inputs = {}
    for field in program.input_fields:
        a = plan_orig.input_boxes[field.name]
        b = plan_mega.input_boxes[field.name]
        union = a.hull(b)
        if union.is_empty():
            continue
        rng = np.random.default_rng(seed + hash(field.name) % 1000)
        inputs[field.name] = ArrayRegion(
            rng.standard_normal(union.shape), union
        )
    output = program.output_fields[0].name
    staged, _ = execute_plan(program, plan_orig, inputs)
    inlined, _ = execute_plan(mega, plan_mega, inputs)
    np.testing.assert_array_equal(
        staged[output].view(target), inlined[output].view(target)
    )


@settings(max_examples=30, deadline=None)
@given(program=programs(), seed=st.integers(0, 1000))
def test_level_schedule_preserves_values(program, seed):
    scheduled = schedule_by_levels(program)
    target = Box((0, 0, 0), (9, 7, 4))
    plan_a = required_regions(program, target)
    plan_b = required_regions(scheduled, target)
    inputs = _inputs_for(program, plan_a, seed)
    # Level scheduling cannot change input requirements.
    assert plan_a.input_boxes == plan_b.input_boxes
    output = program.output_fields[0].name
    a, _ = execute_plan(program, plan_a, inputs)
    b, _ = execute_plan(scheduled, plan_b, inputs)
    np.testing.assert_array_equal(a[output].data, b[output].data)


@settings(max_examples=40, deadline=None)
@given(program=programs())
def test_serialization_roundtrip_identity(program):
    assert load_program(dump_program(program)) == program


@settings(max_examples=30, deadline=None)
@given(program=programs())
def test_dead_stage_elimination_idempotent(program):
    once = eliminate_dead_stages(program)
    twice = eliminate_dead_stages(once)
    assert once == twice
    # Generator guarantees no dead stages, so nothing should change.
    assert once == program


@settings(max_examples=30, deadline=None)
@given(program=programs(), seed=st.integers(0, 1000))
def test_buffer_reuse_bit_exact_for_random_programs(program, seed):
    """The liveness arena never changes results, for any program."""
    target = Box((0, 0, 0), (9, 7, 4))
    plan = required_regions(program, target)
    inputs = _inputs_for(program, plan, seed)
    plain, _ = execute_plan(program, plan, inputs)
    reused, stats = execute_plan(program, plan, inputs, reuse_buffers=True)
    output = program.output_fields[0].name
    np.testing.assert_array_equal(plain[output].data, reused[output].data)
    assert stats.allocations + stats.reused_buffers == len(
        [b for b in plan.stage_boxes if not b.is_empty()]
    )

"""Seeded chaos trajectories: every fault kind, every backend, one truth.

The targeted fault tests exercise one recovery path at a time; this
module turns the injector loose.  A seeded schedule places all five
fault kinds (``crash``, ``kill``, ``slow``, ``corrupt``, ``hang``) at
random islands and steps of a 50-step run, and the same schedule is
replayed on every backend — in-process and multi-process alike — under
the full recovery stack (per-island retry, deadline supervision,
checkpoint rollback).  The property: the final field is bit-identical
to the fault-free reference on every backend, and the recovery ledger
accounts for exactly the faults the schedule injected.  Kinds a backend
cannot apply must degrade by the documented rules — ``kill`` to
``crash`` in-process, ``hang`` skipped gracefully — without breaking
the trajectory.
"""

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.mpdata import random_state
from repro.runtime import EngineConfig, MpdataIslandSolver, RecoveryPolicy

SHAPE = (16, 12, 8)
STEPS = 50
ISLANDS = 2

BACKENDS = [
    pytest.param(EngineConfig(backend="interpreter"), id="interpreter"),
    pytest.param(EngineConfig(backend="compiled"), id="compiled"),
    pytest.param(
        EngineConfig(backend="tiled", block_shape=(8, 12, 8)), id="tiled"
    ),
    pytest.param(
        EngineConfig(backend="procs", step_deadline=2.0), id="procs"
    ),
]


def _chaos_schedule(seed):
    """One fault of every kind at seed-chosen distinct (island, step) sites.

    Transient faults only (``attempts=1``): together with distinct sites
    this makes the expected ledger exact — one retry per crash/kill(/hang
    where applied), one guard trip and rollback for the corruption.
    """
    rng = random.Random(seed)
    steps = rng.sample(range(1, STEPS - 5), 5)
    specs = []
    for kind, step in zip(("crash", "kill", "slow", "corrupt", "hang"), steps):
        site = f"{kind}@island={rng.randrange(ISLANDS)},step={step}"
        if kind == "slow":
            site += ",delay=0.05"
        specs.append(site)
    return tuple(sorted(specs))


@pytest.fixture(scope="module")
def reference():
    state = random_state(SHAPE, seed=3)
    with MpdataIslandSolver(
        SHAPE, ISLANDS, config=EngineConfig(backend="interpreter")
    ) as solver:
        return np.array(solver.run(state, STEPS), copy=True)


@pytest.mark.parametrize("seed", [11, 23])
@pytest.mark.parametrize("base", BACKENDS)
def test_chaos_trajectory_bit_identical(base, seed, reference):
    schedule = _chaos_schedule(seed)
    config = replace(base, max_retries=4, fault_specs=schedule)
    state = random_state(SHAPE, seed=3)
    with MpdataIslandSolver(SHAPE, ISLANDS, config=config) as solver:
        final = np.array(
            solver.run(
                state,
                STEPS,
                recovery=RecoveryPolicy(checkpoint_every=5, max_rollbacks=20),
            ),
            copy=True,
        )
        report = solver.last_recovery_report
        procs = config.backend == "procs"
        supervised = procs and solver.runner.backend.deadline_clock.supervised
        assert not solver.runner.backend.serial_fallback

    stats = report.fault_stats
    # Every scheduled fault fired exactly once ...
    assert stats.injected_crashes == 1
    assert stats.injected_kills == 1
    assert stats.injected_slowdowns == 1
    assert stats.injected_corruptions == 1
    assert stats.injected_hangs == 1
    # ... and was recovered by the documented path for this backend.
    assert stats.hangs_detected == (1 if supervised else 0)
    assert stats.retries == (3 if procs else 2)  # crash + kill (+ hang)
    assert stats.retry_successes == stats.retries
    assert stats.islands_failed == 0
    assert report.guard_trips == 1
    assert report.rollbacks == 1
    assert report.completed_steps == STEPS

    assert np.array_equal(final, reference)


def test_schedules_differ_across_seeds():
    assert _chaos_schedule(11) != _chaos_schedule(23)
    assert _chaos_schedule(11) == _chaos_schedule(11)  # deterministic

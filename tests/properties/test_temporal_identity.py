"""Property tests of temporal blocking's composed halo geometry.

Temporal blocking (``sync_every = s``) composes the backward halo walk
across *steps*: each island runs ``s`` full cascades from ``s``-fold
deeper ghosts before re-synchronizing.  The ledger flattens the stage
axis to ``s * stages`` entries, and everything proved per-step in
``test_halo_identity`` must survive the composition: ``Box.difference``
must carve exact partitions (the flows are built from it), the stage
flows must fill exactly what an island buffers but does not compute,
the composed plans must chain output-region to input-region between
sub-steps, and the Sect. 3.2 identity — what exchange ships equals
what recompute duplicates — must hold for *every* ``s``, not just the
paper's per-step sync.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    Variant,
    build_halo_ledger,
    partition_domain,
    partition_grid_2d,
)
from repro.stencil import Box, full_box

from .test_invariants import programs

#: Every random program's first stage reads ``x1`` (the strategy always
#: takes the newest available field), so composing steps through it is
#: well-defined for all drawn programs.
RECURRENT = "x1"

sync_depths = st.sampled_from([1, 2, 4])


@st.composite
def box_pairs(draw):
    """Two boxes that may nest, overlap, touch, or miss entirely."""

    def box(max_lo: int) -> Box:
        lo = tuple(draw(st.integers(-max_lo, max_lo)) for _ in range(3))
        extent = tuple(draw(st.integers(0, 6)) for _ in range(3))
        return Box(lo, tuple(a + b for a, b in zip(lo, extent)))

    return box(8), box(8)


@st.composite
def partitions(draw, shape):
    """A 1D slab cut (either paper variant) or a 2D island grid —
    islands at the domain faces are boundary-clipped either way."""
    domain = full_box(shape)
    if draw(st.booleans()):
        return partition_domain(
            domain,
            draw(st.integers(2, 4)),
            draw(st.sampled_from([Variant.A, Variant.B])),
        )
    return partition_grid_2d(
        domain, draw(st.integers(1, 3)), draw(st.integers(1, 3))
    )


@settings(max_examples=100, deadline=None)
@given(pair=box_pairs())
def test_box_difference_is_an_exact_partition(pair):
    """``a.difference(b)`` tiles ``a \\ b``: pieces lie in ``a``, miss
    ``b``, are pairwise disjoint, and their sizes sum exactly."""
    a, b = pair
    pieces = a.difference(b)
    for piece in pieces:
        assert not piece.is_empty()
        assert a.contains(piece)
        assert piece.intersect(b).is_empty()
    for i, first in enumerate(pieces):
        for second in pieces[i + 1 :]:
            assert first.intersect(second).is_empty()
    assert (
        sum(piece.size for piece in pieces)
        == a.size - a.intersect(b).size
    )


@settings(max_examples=25, deadline=None)
@given(
    program=programs(),
    sync_every=sync_depths,
    shape=st.tuples(
        st.integers(10, 18), st.integers(8, 14), st.integers(3, 8)
    ),
    data=st.data(),
)
def test_stage_flows_fill_exactly_what_is_missing(
    program, sync_every, shape, data
):
    """At every composed depth, each flat stage's flows are valid copies
    (from the owner's computed region) that together cover exactly the
    buffered-but-not-computed region of the destination island."""
    partition = data.draw(partitions(shape))
    ledger = build_halo_ledger(
        program,
        partition,
        policy="exchange",
        sync_every=sync_every,
        recurrent=RECURRENT,
    )
    flat_stages = sync_every * len(program.stages)
    assert len(ledger.stage_flows) == flat_stages
    for stage in range(flat_stages):
        for dst in range(partition.count):
            need = ledger.buffer_boxes[dst][stage]
            have = ledger.compute_boxes[dst][stage]
            incoming = [
                flow for flow in ledger.stage_flows[stage] if flow.dst == dst
            ]
            for flow in incoming:
                assert need.contains(flow.box)
                assert flow.box.intersect(have).is_empty()
                assert ledger.compute_boxes[flow.src][stage].contains(
                    flow.box
                )
                assert ledger.owned_boxes[flow.src].contains(flow.box)
            for i, first in enumerate(incoming):
                for second in incoming[i + 1 :]:
                    assert first.box.intersect(second.box).is_empty()
            assert (
                sum(flow.points for flow in incoming)
                == need.size - need.intersect(have).size
            )


@settings(max_examples=25, deadline=None)
@given(
    program=programs(),
    sync_every=sync_depths,
    shape=st.tuples(
        st.integers(10, 18), st.integers(8, 14), st.integers(3, 8)
    ),
    data=st.data(),
)
def test_identity_generalizes_to_super_steps(
    program, sync_every, shape, data
):
    """Sect. 3.2 for every ``s``: over one super-step, pure exchange
    ships exactly the points pure recompute duplicates, and the composed
    plans chain each sub-step's target into the next one's read."""
    partition = data.draw(partitions(shape))
    exchange = build_halo_ledger(
        program,
        partition,
        policy="exchange",
        sync_every=sync_every,
        recurrent=RECURRENT,
    )
    recompute = build_halo_ledger(
        program,
        partition,
        policy="recompute",
        sync_every=sync_every,
        recurrent=RECURRENT,
    )
    assert exchange.exchanged_points() == recompute.redundant_points
    assert exchange.redundant_points == 0
    assert recompute.exchanged_points() == 0
    for per_island in recompute.step_plans:
        assert len(per_island) == sync_every
        for earlier, later in zip(per_island, per_island[1:]):
            assert earlier.target == later.input_boxes[RECURRENT]
